/**
 * @file
 * Windowed parallel kernel tests.
 *
 * Three layers:
 *  - ShardedEngine alone (toy tasks): horizon growth to idle, the
 *    matrix-driven per-shard horizons, the horizon clamp, the
 *    window-end edge case, and thread-count independence.
 *  - Machine-level stress driven manually through the engine: the
 *    coherence oracle's end state must be identical for every
 *    partition scheme, shard count, and thread count (the oracle
 *    itself is the witness — it panics on any SWMR/version violation
 *    a data race would produce).
 *  - Whole workloads through runWorkload: end-of-run stats, tick
 *    counts, and a Figure-6-style formatted report must be identical
 *    between the 1-shard reference and multi-shard runs across both
 *    partition schemes, with and without fault injection.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <iomanip>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "machine/builder.hh"
#include "machine/machine.hh"
#include "report/experiment.hh"
#include "report/report.hh"
#include "sim/event_queue.hh"
#include "sim/log.hh"
#include "sim/random.hh"
#include "sim/shard.hh"
#include "workload/workload.hh"

namespace pimdsm
{
namespace
{

// ===================================================== engine (toy) ==

/**
 * Self-contained task: each shard runs a chain of events that
 * reschedules itself at a shard-specific stride and folds (shard,
 * tick) into a checksum. No cross-shard traffic — this isolates the
 * engine's windowing from the Machine's commit logic.
 */
class ToyTask : public ShardTask
{
  public:
    ToyTask(int shards, Tick horizon, Tick clamp = kMaxTick)
        : clamp_(clamp), queues_(shards), sums_(shards)
    {
        for (int s = 0; s < shards; ++s) {
            auto *q = &queues_[s];
            auto *sum = &sums_[s];
            const Tick stride = 3 + s;
            queues_[s].schedule(static_cast<Tick>(s), [=] {
                chain(q, sum, stride, horizon);
            });
        }
    }

    void
    runWindow(int shard, Tick begin, Tick end) override
    {
        EXPECT_GE(queues_[shard].nextEventTick(), begin);
        queues_[shard].runUntil(end - 1);
    }

    Tick nextTime(int shard) override
    {
        return queues_[shard].nextEventTick();
    }

    Tick horizonClamp() override { return clamp_; }

    void setClamp(Tick clamp) { clamp_ = clamp; }

    bool
    commit(Tick window_end) override
    {
        lastCommit_ = window_end;
        ++commits_;
        return true;
    }

    std::uint64_t
    checksum() const
    {
        std::uint64_t h = 0;
        for (const auto &s : sums_)
            h = h * 1000003 + s;
        return h;
    }

    int commits_ = 0;
    Tick lastCommit_ = 0;

  private:
    static void
    chain(EventQueue *q, std::uint64_t *sum, Tick stride, Tick horizon)
    {
        *sum += static_cast<std::uint64_t>(q->curTick()) * 31 + 7;
        if (q->curTick() + stride <= horizon) {
            q->schedule(q->curTick() + stride,
                        [=] { chain(q, sum, stride, horizon); });
        }
    }

    Tick clamp_;
    std::vector<EventQueue> queues_;
    std::vector<std::uint64_t> sums_;
};

TEST(ShardedEngine, RunsToIdle)
{
    ToyTask task(4, 1000);
    ShardedEngine eng(4, 1, 50);
    EXPECT_EQ(eng.run(task), ShardedEngine::Stop::Idle);
    // The horizons chase the earliest pending event (min_e + L), so the
    // clock must have passed the last event before going idle.
    EXPECT_GE(eng.now(), 1000u);
    EXPECT_EQ(task.commits_, static_cast<int>(eng.windowsRun()));
}

TEST(ShardedEngine, LookaheadDoesNotChangeResults)
{
    // The horizon schedule (and round count) depends on L; the executed
    // event set must not.
    ToyTask coarse(4, 2000);
    ShardedEngine ec(4, 1, 50);
    EXPECT_EQ(ec.run(coarse), ShardedEngine::Stop::Idle);

    ToyTask fine(4, 2000);
    ShardedEngine ef(4, 1, 7);
    EXPECT_EQ(ef.run(fine), ShardedEngine::Stop::Idle);

    EXPECT_EQ(coarse.checksum(), fine.checksum());
    EXPECT_GT(ef.windowsRun(), ec.windowsRun());
}

TEST(ShardedEngine, HorizonClampStopsAndResumes)
{
    ToyTask task(2, 1000, /*clamp=*/400);
    ShardedEngine eng(2, 1, 25);
    EXPECT_EQ(eng.run(task), ShardedEngine::Stop::Idle);
    // Everything strictly below the clamp ran; nothing at or past it.
    EXPECT_GE(task.nextTime(0), 400u);
    EXPECT_GE(task.nextTime(1), 400u);
    EXPECT_LE(eng.now(), 400u);

    // Lifting the clamp resumes exactly where the run stopped and must
    // reproduce an unclamped run bit for bit.
    task.setClamp(kMaxTick);
    EXPECT_EQ(eng.run(task), ShardedEngine::Stop::Idle);

    ToyTask ref(2, 1000);
    ShardedEngine engRef(2, 1, 25);
    EXPECT_EQ(engRef.run(ref), ShardedEngine::Stop::Idle);
    EXPECT_EQ(task.checksum(), ref.checksum());
}

TEST(ShardedEngine, ThreadCountDoesNotChangeResults)
{
    std::uint64_t ref_sum = 0;
    std::uint64_t ref_windows = 0;
    for (int threads : {1, 2, 4}) {
        ToyTask task(4, 5000);
        ShardedEngine eng(4, threads, 37);
        EXPECT_EQ(eng.run(task), ShardedEngine::Stop::Idle);
        if (threads == 1) {
            ref_sum = task.checksum();
            ref_windows = eng.windowsRun();
            continue;
        }
        EXPECT_EQ(task.checksum(), ref_sum) << threads << " threads";
        EXPECT_EQ(eng.windowsRun(), ref_windows)
            << threads << " threads";
    }
}

/**
 * Matrix-driven horizons: shard 1 sits close to shard 0 (small
 * L[0][1]) but far from itself and from shard 0's perspective the
 * other way. Its first window must stop at E_0 + L[0][1] even while
 * shard 0's own window runs far past it — the per-pair asymmetry is
 * the whole point of the matrix.
 */
class MatrixProbeTask final : public ShardTask
{
  public:
    MatrixProbeTask() : queues_(2), begins_(2, 0)
    {
        queues_[0].schedule(0, [this] { ran_.push_back({0, 0}); });
        queues_[1].schedule(100, [this] {
            ran_.push_back({1, begins_[1]});
        });
    }

    void
    runWindow(int shard, Tick begin, Tick end) override
    {
        begins_[static_cast<std::size_t>(shard)] = begin;
        queues_[static_cast<std::size_t>(shard)].runUntil(end - 1);
    }

    Tick nextTime(int shard) override
    {
        return queues_[static_cast<std::size_t>(shard)].nextEventTick();
    }

    bool commit(Tick) override { return true; }

    struct Ran
    {
        int shard;
        Tick windowBegin;
    };
    std::vector<Ran> ran_;

  private:
    std::vector<EventQueue> queues_;
    std::vector<Tick> begins_;
};

TEST(ShardedEngine, MatrixGivesPerShardHorizons)
{
    LookaheadMatrix m;
    m.shards = 2;
    //              L[0][0]  L[0][1]  L[1][0]  L[1][1]
    m.pair = {1000, 10, 1000, 1000};

    MatrixProbeTask task;
    ShardedEngine eng(2, 1, &m);
    EXPECT_EQ(eng.run(task), ShardedEngine::Stop::Idle);

    // Round 1: E = {0, 100}; H_1 = min(0 + 10, 100 + 1000) = 10, so
    // shard 1's event at 100 must wait for round 2 (window begin 10)
    // even though shard 0's window ran to 1000 in the same round.
    ASSERT_EQ(task.ran_.size(), 2u);
    EXPECT_EQ(task.ran_[0].shard, 0);
    EXPECT_EQ(task.ran_[1].shard, 1);
    EXPECT_EQ(task.ran_[1].windowBegin, 10u);
    EXPECT_EQ(eng.windowsRun(), 2u);
}

/**
 * The lookahead horizon edge: an event scheduled at exactly the window
 * end must run in the *next* window, never the current one.
 */
class HorizonTask final : public ShardTask
{
  public:
    HorizonTask()
    {
        // First event at tick 0; its handler schedules a successor at
        // exactly tick L (== the end of window [0, L)).
        q_.schedule(0, [this] {
            q_.schedule(kLookahead, [this] { ranAt_ = windowBegin_; });
        });
    }

    static constexpr Tick kLookahead = 10;

    void
    runWindow(int, Tick begin, Tick end) override
    {
        windowBegin_ = begin;
        q_.runUntil(end - 1);
    }

    Tick nextTime(int) override { return q_.nextEventTick(); }
    bool commit(Tick) override { return true; }

    Tick ranAt_ = -1;

  private:
    EventQueue q_;
    Tick windowBegin_ = -1;
};

TEST(ShardedEngine, EventAtWindowEndRunsInNextWindow)
{
    HorizonTask task;
    ShardedEngine eng(1, 1, HorizonTask::kLookahead);
    EXPECT_EQ(eng.run(task), ShardedEngine::Stop::Idle);
    // The successor sat at tick L and must have executed in the window
    // beginning at L, not the one ending there.
    EXPECT_EQ(task.ranAt_, HorizonTask::kLookahead);
}

// ========================================== machine-level stress ====

MachineConfig
stressCfg(ArchKind arch, PartitionScheme scheme, int shards, int threads)
{
    MachineConfig cfg = makeBaseConfig(arch);
    cfg.numPNodes = 8;
    cfg.numThreads = 8;
    cfg.numDNodes = arch == ArchKind::Agg ? 4 : 0;
    cfg.pNodeMemBytes = 1 << 20;
    cfg.dNodeMemBytes = 1 << 20;
    cfg.l1 = CacheParams{512, 1, 64, 3};
    cfg.l2 = CacheParams{2048, 1, 64, 6};
    cfg.check.enabled = true; // strict oracle: races would panic
    cfg.partition = scheme;
    cfg.shards.count = shards;
    cfg.shards.threads = threads;
    fitMesh(cfg.net, cfg.totalNodes());
    cfg.validate();
    return cfg;
}

/** Random requester (same shape as test_stress.cc, windowed-safe:
 *  completions run on the issuing node's shard, so the per-agent RNG
 *  is only ever touched by that shard's thread). */
class Agent
{
  public:
    Agent(Machine &m, NodeId n, std::uint64_t seed, int total,
          std::atomic<int> *done)
        : m_(m), node_(n), rng_(seed), remaining_(total), done_(done)
    {
    }

    void
    issueNext()
    {
        if (remaining_-- == 0) {
            done_->fetch_add(1);
            return;
        }
        std::uint64_t idx = rng_.chance(0.5) ? rng_.nextBounded(8)
                                             : rng_.nextBounded(64);
        const Addr addr = (1ull << 20) + idx * 128 +
                          rng_.nextBounded(2) * 64;
        const bool write = rng_.chance(0.4);
        m_.compute(node_)->access(addr, write,
                                  [this](Tick, ReadService) {
                                      m_.eq().scheduleIn(
                                          1 + rng_.nextBounded(20),
                                          [this] { issueNext(); });
                                  });
    }

  private:
    Machine &m_;
    NodeId node_;
    Rng rng_;
    int remaining_;
    std::atomic<int> *done_;
};

/** Drive the machine through the engine until every agent finishes
 *  and the queues drain; return an oracle + stats digest. */
class MachineTask final : public ShardTask
{
  public:
    explicit MachineTask(Machine &m) : m_(m) {}

    void
    runWindow(int shard, Tick begin, Tick end) override
    {
        m_.runShardWindow(shard, begin, end);
    }

    Tick nextTime(int shard) override { return m_.shardNextTime(shard); }
    bool
    commit(Tick wend) override
    {
        m_.commitWindow(wend);
        return true;
    }

  private:
    Machine &m_;
};

std::string
stressDigest(ArchKind arch, PartitionScheme scheme, int shards,
             int threads)
{
    MachineConfig cfg = stressCfg(arch, scheme, shards, threads);
    Machine m(cfg);
    MachineTask task(m);
    ShardedEngine eng(m.numShards(), cfg.shards.threads,
                      &m.lookaheadMatrix());

    std::atomic<int> done{0};
    std::vector<std::unique_ptr<Agent>> agents;
    const int n_agents = 8;
    for (NodeId n = 0; n < n_agents; ++n) {
        agents.push_back(std::make_unique<Agent>(
            m, n, 0x1234 + static_cast<std::uint64_t>(n) * 999, 400,
            &done));
        Agent *a = agents.back().get();
        m.eqFor(n).schedule(static_cast<Tick>(n) + 1,
                            [a] { a->issueNext(); });
    }
    EXPECT_EQ(eng.run(task), ShardedEngine::Stop::Idle);
    EXPECT_EQ(done.load(), n_agents);
    m.mergeShardStats();

    // Digest: oracle end state (sorted), violation count, stats, time.
    // The round count and the cross-shard message split depend on the
    // partition and shard count by design, so neither may enter the
    // digest — everything else must match bit for bit.
    std::ostringstream os;
    std::vector<std::string> holders;
    m.oracle().forEachTrackedHolder(
        [&](Addr a, NodeId n, CohState st, Version v) {
            std::ostringstream h;
            h << std::hex << a << std::dec << "/" << n << "/"
              << static_cast<int>(st) << "/" << v;
            holders.push_back(h.str());
        });
    std::sort(holders.begin(), holders.end());
    for (const auto &h : holders)
        os << h << "\n";
    os << "violations=" << m.oracle().violations() << "\n";
    os << "messages=" << m.messagesSent() << "\n";
    for (const auto &[k, v] : m.stats().all()) {
        if (k == "sim.xshard_msgs")
            continue;
        os << k << "=" << v << "\n";
    }
    return os.str();
}

class StressAllArchs : public ::testing::TestWithParam<ArchKind>
{
};

TEST_P(StressAllArchs, ShardThreadAndPartitionAreEquivalent)
{
    const auto rr = PartitionScheme::RoundRobin;
    const auto reg = PartitionScheme::Region;
    const std::string ref = stressDigest(GetParam(), rr, 1, 1);
    EXPECT_EQ(stressDigest(GetParam(), rr, 2, 1), ref) << "rr 2s";
    EXPECT_EQ(stressDigest(GetParam(), rr, 4, 1), ref) << "rr 4s";
    EXPECT_EQ(stressDigest(GetParam(), rr, 4, 4), ref) << "rr 4s 4t";
    EXPECT_EQ(stressDigest(GetParam(), reg, 2, 1), ref) << "region 2s";
    EXPECT_EQ(stressDigest(GetParam(), reg, 4, 1), ref) << "region 4s";
    EXPECT_EQ(stressDigest(GetParam(), reg, 4, 4), ref)
        << "region 4s 4t";
}

INSTANTIATE_TEST_SUITE_P(AllArchs, StressAllArchs,
                         ::testing::Values(ArchKind::Numa,
                                           ArchKind::Coma,
                                           ArchKind::Agg));

// ============================================ whole-workload runs ===

/** Counters that intentionally differ across kernel configurations:
 *  the shard/thread shape itself, and the window/cross-shard traffic
 *  accounting that is a function of the partition, not of the modeled
 *  machine. Everything else must match exactly. */
std::map<std::string, double>
comparableCounters(const RunResult &r)
{
    std::map<std::string, double> c = r.counters;
    c.erase("sim.shards");
    c.erase("sim.threads");
    c.erase("sim.windows");
    c.erase("sim.window_count");
    c.erase("sim.xshard_msgs");
    c.erase("sim.xshard_frac");
    c.erase("sim.barrier_wait_ticks");
    // The live version-freshness assertions are tick-order checks and
    // disarm at 2+ shards (the oracle journal is the canonical check
    // there), so their fault-mode degradation counters exist only
    // where the assertions evaluate.
    c.erase("fault.stale_read_completions");
    c.erase("fault.stale_home_serves");
    return c;
}

RunResult
runApp(const std::string &app, PartitionScheme scheme, int shards,
       int threads, bool faults = false, Tick pnode_death = 0)
{
    auto wl = makeWorkload(app, 1);
    BuildSpec spec;
    spec.arch = ArchKind::Agg;
    spec.threads = 4;
    spec.dNodes = 2;
    spec.pressure = 0.25;
    MachineConfig cfg = buildConfig(*wl, spec);
    cfg.partition = scheme;
    cfg.shards.count = shards;
    cfg.shards.threads = threads;
    if (faults) {
        cfg.faults.setUniformDropRate(0.02);
        cfg.faults.seed = 0xfeedbeefull;
        cfg.faults.timeoutTicks = 5000;
        cfg.faults.sweepInterval = 1000;
        cfg.faults.deaths.push_back(
            DNodeDeath{10'000, static_cast<NodeId>(cfg.numPNodes)});
    }
    if (pnode_death != 0) {
        cfg.faults.seed = 0xfeedbeefull;
        cfg.faults.pnodeDeaths.push_back(PNodeDeath{pnode_death, 1});
    }
    warnResetForTest();
    return runWorkload(cfg, *wl);
}

void
expectSameRun(const RunResult &a, const RunResult &b,
              const std::string &what)
{
    EXPECT_EQ(a.totalTicks, b.totalTicks) << what;
    EXPECT_EQ(a.messages, b.messages) << what;
    EXPECT_EQ(a.instructions, b.instructions) << what;
    EXPECT_EQ(a.time.busy, b.time.busy) << what;
    EXPECT_EQ(a.time.sync, b.time.sync) << what;
    EXPECT_EQ(a.time.memoryStall, b.time.memoryStall) << what;
    EXPECT_EQ(a.census.totalLines(), b.census.totalLines()) << what;
    EXPECT_EQ(a.failovers, b.failovers) << what;
    const auto ca = comparableCounters(a);
    const auto cb = comparableCounters(b);
    for (const auto &[k, v] : ca) {
        const auto it = cb.find(k);
        if (it == cb.end()) {
            ADD_FAILURE() << what << ": counter " << k << " missing";
            continue;
        }
        EXPECT_EQ(v, it->second)
            << what << ": counter " << k << " "
            << std::setprecision(17) << v << " vs " << it->second;
    }
    EXPECT_EQ(ca.size(), cb.size()) << what;
}

TEST(ShardDifferential, CleanWorkloadMatchesAcrossShardCounts)
{
    const auto rr = PartitionScheme::RoundRobin;
    const auto reg = PartitionScheme::Region;
    const RunResult ref = runApp("fft", rr, 1, 1);
    expectSameRun(ref, runApp("fft", rr, 2, 1), "rr 2 shards");
    expectSameRun(ref, runApp("fft", rr, 4, 1), "rr 4 shards");
    expectSameRun(ref, runApp("fft", rr, 4, 4), "rr 4s / 4 threads");
    expectSameRun(ref, runApp("fft", reg, 4, 1), "region 4 shards");
    expectSameRun(ref, runApp("fft", reg, 4, 4),
                  "region 4s / 4 threads");
}

TEST(ShardDifferential, FaultCampaignMatchesAcrossShardCounts)
{
    const auto rr = PartitionScheme::RoundRobin;
    const auto reg = PartitionScheme::Region;
    const RunResult ref = runApp("radix", rr, 1, 1, true);
    EXPECT_GT(ref.counters.at("fault.net.drop"), 0.0);
    EXPECT_EQ(ref.failovers, 1);
    expectSameRun(ref, runApp("radix", rr, 2, 1, true), "rr 2 shards");
    expectSameRun(ref, runApp("radix", rr, 4, 1, true), "rr 4 shards");
    expectSameRun(ref, runApp("radix", rr, 4, 4, true),
                  "rr 4s / 4 threads");
    expectSameRun(ref, runApp("radix", reg, 4, 1, true),
                  "region 4 shards");
    expectSameRun(ref, runApp("radix", reg, 4, 4, true),
                  "region 4s / 4 threads");
}

/** P-node fail-stop failover under multi-shard windows: abort /
 *  writeback-salvage drives master-copy version bumps that can share
 *  a window with a home serve of the same line on another shard. The
 *  live freshness assertions are tick-order checks and must disarm at
 *  2+ shards (this exact leg panicked "home serving a stale copy"
 *  before they were gated); results must still match the 1-shard
 *  windowed reference bit-for-bit. */
TEST(ShardDifferential, PNodeDeathMatchesAcrossShardCounts)
{
    const auto rr = PartitionScheme::RoundRobin;
    const auto reg = PartitionScheme::Region;
    const Tick half = runApp("barnes", rr, 1, 1).totalTicks / 2;
    const RunResult ref = runApp("barnes", rr, 1, 1, false, half);
    EXPECT_EQ(ref.pnodeFailovers, 1);
    expectSameRun(ref, runApp("barnes", rr, 4, 2, false, half),
                  "rr 4s / 2 threads");
    expectSameRun(ref, runApp("barnes", reg, 4, 2, false, half),
                  "region 4s / 2 threads");
    expectSameRun(ref, runApp("barnes", reg, 4, 4, false, half),
                  "region 4s / 4 threads");
}

/** Figure-6-style formatted output must be byte-identical between the
 *  windowed reference and multi-shard runs under either partition. */
std::string
fig6Text(PartitionScheme scheme, int shards, int threads)
{
    std::ostringstream os;
    std::vector<Bar> bars;
    TablePrinter table({"app", "AGG25"});
    for (const std::string app : {"fft", "barnes"}) {
        auto wl = makeWorkload(app, 1);
        BuildSpec spec;
        spec.arch = ArchKind::Agg;
        spec.threads = 4;
        spec.pressure = 0.25;
        MachineConfig cfg = buildConfig(*wl, spec);
        cfg.partition = scheme;
        cfg.shards.count = shards;
        cfg.shards.threads = threads;
        const RunResult r = runWorkload(cfg, *wl);
        const double mem = r.memoryFraction();
        bars.push_back({app, {mem, 1.0 - mem}});
        table.addRow({app, TablePrinter::num(
                               static_cast<double>(r.totalTicks))});
    }
    printBars(os, "Fig 6 (windowed)", {"Memory", "Processor"}, bars);
    table.print(os);
    return os.str();
}

TEST(ShardDifferential, Fig6OutputIsByteIdentical)
{
    const std::string ref = fig6Text(PartitionScheme::RoundRobin, 1, 1);
    EXPECT_EQ(fig6Text(PartitionScheme::RoundRobin, 4, 1), ref);
    EXPECT_EQ(fig6Text(PartitionScheme::Region, 4, 1), ref);
    EXPECT_EQ(fig6Text(PartitionScheme::Region, 4, 4), ref);
}

} // namespace
} // namespace pimdsm
