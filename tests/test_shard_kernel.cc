/**
 * @file
 * Windowed parallel kernel tests.
 *
 * Three layers:
 *  - ShardedEngine alone (toy task): window grid, the lookahead
 *    horizon edge case, and thread-count independence.
 *  - Machine-level stress driven manually through the engine: the
 *    coherence oracle's end state must be identical for every shard
 *    and thread count (the oracle itself is the witness — it panics on
 *    any SWMR/version violation a data race would produce).
 *  - Whole workloads through runWorkload: end-of-run stats, tick
 *    counts, and a Figure-6-style formatted report must be identical
 *    between the 1-shard reference and multi-shard runs, with and
 *    without fault injection.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "machine/builder.hh"
#include "machine/machine.hh"
#include "report/experiment.hh"
#include "report/report.hh"
#include "sim/event_queue.hh"
#include "sim/log.hh"
#include "sim/random.hh"
#include "sim/shard.hh"
#include "workload/workload.hh"

namespace pimdsm
{
namespace
{

// ===================================================== engine (toy) ==

/**
 * Self-contained task: each shard runs a chain of events that
 * reschedules itself at a shard-specific stride and folds (shard,
 * tick) into a checksum. No cross-shard traffic — this isolates the
 * engine's windowing from the Machine's commit logic.
 */
class ToyTask final : public ShardTask
{
  public:
    ToyTask(int shards, Tick horizon) : queues_(shards), sums_(shards)
    {
        for (int s = 0; s < shards; ++s) {
            auto *q = &queues_[s];
            auto *sum = &sums_[s];
            const Tick stride = 3 + s;
            queues_[s].schedule(static_cast<Tick>(s), [=] {
                chain(q, sum, stride, horizon);
            });
        }
    }

    void
    runWindow(int shard, Tick begin, Tick end) override
    {
        EXPECT_GE(queues_[shard].nextEventTick(), begin);
        queues_[shard].runUntil(end - 1);
    }

    Tick nextTime(int shard) override
    {
        return queues_[shard].nextEventTick();
    }

    bool
    commit(Tick window_end) override
    {
        lastCommit_ = window_end;
        ++commits_;
        return true;
    }

    std::uint64_t
    checksum() const
    {
        std::uint64_t h = 0;
        for (const auto &s : sums_)
            h = h * 1000003 + s;
        return h;
    }

    int commits_ = 0;
    Tick lastCommit_ = 0;

  private:
    static void
    chain(EventQueue *q, std::uint64_t *sum, Tick stride, Tick horizon)
    {
        *sum += static_cast<std::uint64_t>(q->curTick()) * 31 + 7;
        if (q->curTick() + stride <= horizon) {
            q->schedule(q->curTick() + stride,
                        [=] { chain(q, sum, stride, horizon); });
        }
    }

    std::vector<EventQueue> queues_;
    std::vector<std::uint64_t> sums_;
};

TEST(ShardedEngine, RunsToIdleOnWindowGrid)
{
    ToyTask task(4, 1000);
    ShardedEngine eng(4, 1, 50);
    EXPECT_EQ(eng.run(task), ShardedEngine::Stop::Idle);
    // Horizon 1000 with L=50: the last occupied window is [1000,1050).
    EXPECT_EQ(eng.now() % 50, 0);
    EXPECT_GE(eng.now(), 1000);
    EXPECT_EQ(task.commits_, static_cast<int>(eng.windowsRun()));
}

TEST(ShardedEngine, ThreadCountDoesNotChangeResults)
{
    std::uint64_t ref_sum = 0;
    std::uint64_t ref_windows = 0;
    for (int threads : {1, 2, 4}) {
        ToyTask task(4, 5000);
        ShardedEngine eng(4, threads, 37);
        EXPECT_EQ(eng.run(task), ShardedEngine::Stop::Idle);
        if (threads == 1) {
            ref_sum = task.checksum();
            ref_windows = eng.windowsRun();
            continue;
        }
        EXPECT_EQ(task.checksum(), ref_sum) << threads << " threads";
        EXPECT_EQ(eng.windowsRun(), ref_windows)
            << threads << " threads";
    }
}

/**
 * The lookahead horizon edge: an event scheduled at exactly the window
 * end must run in the *next* window, never the current one.
 */
class HorizonTask final : public ShardTask
{
  public:
    HorizonTask()
    {
        // First event at tick 0; its handler schedules a successor at
        // exactly tick L (== the end of window [0, L)).
        q_.schedule(0, [this] {
            q_.schedule(kLookahead, [this] { ranAt_ = windowBegin_; });
        });
    }

    static constexpr Tick kLookahead = 10;

    void
    runWindow(int, Tick begin, Tick end) override
    {
        windowBegin_ = begin;
        q_.runUntil(end - 1);
    }

    Tick nextTime(int) override { return q_.nextEventTick(); }
    bool commit(Tick) override { return true; }

    Tick ranAt_ = -1;

  private:
    EventQueue q_;
    Tick windowBegin_ = -1;
};

TEST(ShardedEngine, EventAtWindowEndRunsInNextWindow)
{
    HorizonTask task;
    ShardedEngine eng(1, 1, HorizonTask::kLookahead);
    EXPECT_EQ(eng.run(task), ShardedEngine::Stop::Idle);
    // The successor sat at tick L and must have executed in the window
    // beginning at L, not the one ending there.
    EXPECT_EQ(task.ranAt_, HorizonTask::kLookahead);
}

// ========================================== machine-level stress ====

MachineConfig
stressCfg(ArchKind arch, int shards, int threads)
{
    MachineConfig cfg = makeBaseConfig(arch);
    cfg.numPNodes = 8;
    cfg.numThreads = 8;
    cfg.numDNodes = arch == ArchKind::Agg ? 4 : 0;
    cfg.pNodeMemBytes = 1 << 20;
    cfg.dNodeMemBytes = 1 << 20;
    cfg.l1 = CacheParams{512, 1, 64, 3};
    cfg.l2 = CacheParams{2048, 1, 64, 6};
    cfg.check.enabled = true; // strict oracle: races would panic
    cfg.shards.count = shards;
    cfg.shards.threads = threads;
    fitMesh(cfg.net, cfg.totalNodes());
    cfg.validate();
    return cfg;
}

/** Random requester (same shape as test_stress.cc, windowed-safe:
 *  completions run on the issuing node's shard, so the per-agent RNG
 *  is only ever touched by that shard's thread). */
class Agent
{
  public:
    Agent(Machine &m, NodeId n, std::uint64_t seed, int total,
          std::atomic<int> *done)
        : m_(m), node_(n), rng_(seed), remaining_(total), done_(done)
    {
    }

    void
    issueNext()
    {
        if (remaining_-- == 0) {
            done_->fetch_add(1);
            return;
        }
        std::uint64_t idx = rng_.chance(0.5) ? rng_.nextBounded(8)
                                             : rng_.nextBounded(64);
        const Addr addr = (1ull << 20) + idx * 128 +
                          rng_.nextBounded(2) * 64;
        const bool write = rng_.chance(0.4);
        m_.compute(node_)->access(addr, write,
                                  [this](Tick, ReadService) {
                                      m_.eq().scheduleIn(
                                          1 + rng_.nextBounded(20),
                                          [this] { issueNext(); });
                                  });
    }

  private:
    Machine &m_;
    NodeId node_;
    Rng rng_;
    int remaining_;
    std::atomic<int> *done_;
};

/** Drive the machine through the engine until every agent finishes
 *  and the queues drain; return an oracle + stats digest. */
class MachineTask final : public ShardTask
{
  public:
    explicit MachineTask(Machine &m) : m_(m) {}

    void
    runWindow(int shard, Tick begin, Tick end) override
    {
        m_.runShardWindow(shard, begin, end);
    }

    Tick nextTime(int shard) override { return m_.shardNextTime(shard); }
    bool
    commit(Tick wend) override
    {
        m_.commitWindow(wend);
        return true;
    }

  private:
    Machine &m_;
};

std::string
stressDigest(ArchKind arch, int shards, int threads)
{
    MachineConfig cfg = stressCfg(arch, shards, threads);
    Machine m(cfg);
    MachineTask task(m);
    ShardedEngine eng(m.numShards(), cfg.shards.threads, m.lookahead());

    std::atomic<int> done{0};
    std::vector<std::unique_ptr<Agent>> agents;
    const int n_agents = 8;
    for (NodeId n = 0; n < n_agents; ++n) {
        agents.push_back(std::make_unique<Agent>(
            m, n, 0x1234 + static_cast<std::uint64_t>(n) * 999, 400,
            &done));
        Agent *a = agents.back().get();
        m.eqFor(n).schedule(static_cast<Tick>(n) + 1,
                            [a] { a->issueNext(); });
    }
    EXPECT_EQ(eng.run(task), ShardedEngine::Stop::Idle);
    EXPECT_EQ(done.load(), n_agents);
    m.mergeShardStats();

    // Digest: oracle end state (sorted), violation count, stats, time.
    std::ostringstream os;
    std::vector<std::string> holders;
    m.oracle().forEachTrackedHolder(
        [&](Addr a, NodeId n, CohState st, Version v) {
            std::ostringstream h;
            h << std::hex << a << std::dec << "/" << n << "/"
              << static_cast<int>(st) << "/" << v;
            holders.push_back(h.str());
        });
    std::sort(holders.begin(), holders.end());
    for (const auto &h : holders)
        os << h << "\n";
    os << "violations=" << m.oracle().violations() << "\n";
    os << "windows=" << eng.windowsRun() << "\n";
    os << "messages=" << m.messagesSent() << "\n";
    for (const auto &[k, v] : m.stats().all())
        os << k << "=" << v << "\n";
    return os.str();
}

class StressAllArchs : public ::testing::TestWithParam<ArchKind>
{
};

TEST_P(StressAllArchs, ShardAndThreadCountsAreEquivalent)
{
    const std::string ref = stressDigest(GetParam(), 1, 1);
    EXPECT_EQ(stressDigest(GetParam(), 2, 1), ref) << "2 shards";
    EXPECT_EQ(stressDigest(GetParam(), 4, 1), ref) << "4 shards";
    EXPECT_EQ(stressDigest(GetParam(), 4, 4), ref) << "4 shards, 4 thr";
}

INSTANTIATE_TEST_SUITE_P(AllArchs, StressAllArchs,
                         ::testing::Values(ArchKind::Numa,
                                           ArchKind::Coma,
                                           ArchKind::Agg));

// ============================================ whole-workload runs ===

/** Counters that intentionally differ across kernel configurations. */
std::map<std::string, double>
comparableCounters(const RunResult &r)
{
    std::map<std::string, double> c = r.counters;
    c.erase("sim.shards");
    c.erase("sim.threads");
    return c;
}

RunResult
runApp(const std::string &app, int shards, int threads,
       bool faults = false)
{
    auto wl = makeWorkload(app, 1);
    BuildSpec spec;
    spec.arch = ArchKind::Agg;
    spec.threads = 4;
    spec.dNodes = 2;
    spec.pressure = 0.25;
    MachineConfig cfg = buildConfig(*wl, spec);
    cfg.shards.count = shards;
    cfg.shards.threads = threads;
    if (faults) {
        cfg.faults.setUniformDropRate(0.02);
        cfg.faults.seed = 0xfeedbeefull;
        cfg.faults.timeoutTicks = 5000;
        cfg.faults.sweepInterval = 1000;
        cfg.faults.deaths.push_back(
            DNodeDeath{10'000, static_cast<NodeId>(cfg.numPNodes)});
    }
    warnResetForTest();
    return runWorkload(cfg, *wl);
}

void
expectSameRun(const RunResult &a, const RunResult &b,
              const std::string &what)
{
    EXPECT_EQ(a.totalTicks, b.totalTicks) << what;
    EXPECT_EQ(a.messages, b.messages) << what;
    EXPECT_EQ(a.instructions, b.instructions) << what;
    EXPECT_EQ(a.time.busy, b.time.busy) << what;
    EXPECT_EQ(a.time.sync, b.time.sync) << what;
    EXPECT_EQ(a.time.memoryStall, b.time.memoryStall) << what;
    EXPECT_EQ(a.census.totalLines(), b.census.totalLines()) << what;
    EXPECT_EQ(a.failovers, b.failovers) << what;
    EXPECT_EQ(comparableCounters(a), comparableCounters(b)) << what;
}

TEST(ShardDifferential, CleanWorkloadMatchesAcrossShardCounts)
{
    const RunResult ref = runApp("fft", 1, 1);
    expectSameRun(ref, runApp("fft", 2, 1), "2 shards");
    expectSameRun(ref, runApp("fft", 4, 1), "4 shards");
    expectSameRun(ref, runApp("fft", 4, 4), "4 shards / 4 threads");
}

TEST(ShardDifferential, FaultCampaignMatchesAcrossShardCounts)
{
    const RunResult ref = runApp("radix", 1, 1, true);
    EXPECT_GT(ref.counters.at("fault.net.drop"), 0.0);
    EXPECT_EQ(ref.failovers, 1);
    expectSameRun(ref, runApp("radix", 2, 1, true), "2 shards");
    expectSameRun(ref, runApp("radix", 4, 1, true), "4 shards");
    expectSameRun(ref, runApp("radix", 4, 4, true),
                  "4 shards / 4 threads");
}

/** Figure-6-style formatted output must be byte-identical between the
 *  windowed reference and a 4-shard run. */
std::string
fig6Text(int shards, int threads)
{
    std::ostringstream os;
    std::vector<Bar> bars;
    TablePrinter table({"app", "AGG25"});
    for (const std::string app : {"fft", "barnes"}) {
        auto wl = makeWorkload(app, 1);
        BuildSpec spec;
        spec.arch = ArchKind::Agg;
        spec.threads = 4;
        spec.pressure = 0.25;
        MachineConfig cfg = buildConfig(*wl, spec);
        cfg.shards.count = shards;
        cfg.shards.threads = threads;
        const RunResult r = runWorkload(cfg, *wl);
        const double mem = r.memoryFraction();
        bars.push_back({app, {mem, 1.0 - mem}});
        table.addRow({app, TablePrinter::num(
                               static_cast<double>(r.totalTicks))});
    }
    printBars(os, "Fig 6 (windowed)", {"Memory", "Processor"}, bars);
    table.print(os);
    return os.str();
}

TEST(ShardDifferential, Fig6OutputIsByteIdentical)
{
    const std::string ref = fig6Text(1, 1);
    EXPECT_EQ(fig6Text(4, 1), ref);
    EXPECT_EQ(fig6Text(4, 4), ref);
}

} // namespace
} // namespace pimdsm
