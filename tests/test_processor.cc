/**
 * @file
 * Processor model tests: issue-width timing, stall-on-use, memory-
 * level parallelism, write-buffer back-pressure, barrier and lock
 * accounting.
 */

#include <gtest/gtest.h>

#include "core/processor.hh"
#include "core/sync.hh"
#include "machine/machine.hh"

namespace pimdsm
{
namespace
{

MachineConfig
procCfg(int p)
{
    MachineConfig cfg = makeBaseConfig(ArchKind::Agg);
    cfg.numPNodes = p;
    cfg.numThreads = p;
    cfg.numDNodes = 1;
    cfg.pNodeMemBytes = 256 * 1024;
    cfg.dNodeMemBytes = 256 * 1024;
    cfg.l1 = CacheParams{1024, 1, 64, 3};
    cfg.l2 = CacheParams{4096, 1, 64, 6};
    fitMesh(cfg.net, cfg.totalNodes());
    cfg.validate();
    return cfg;
}

struct Rig
{
    Machine m;
    SyncManager sync;

    explicit Rig(int p = 1) : m(procCfg(p)), sync(p) {}

    /** Run ops on thread 0 and return the processor. */
    std::unique_ptr<Processor>
    runOps(std::vector<Op> ops, NodeId node = 0)
    {
        auto proc = std::make_unique<Processor>(
            m.eq(), *m.compute(node), sync, node, m.config().proc);
        bool done = false;
        proc->run(std::make_unique<VectorStream>(std::move(ops)),
                  [&done] { done = true; });
        m.eq().run();
        EXPECT_TRUE(done);
        return proc;
    }
};

TEST(Processor, ComputeTimeFollowsIssueWidth)
{
    Rig rig;
    auto p = rig.runOps({Op::compute(400)});
    EXPECT_EQ(p->time().busy, 100u); // 4-issue
    EXPECT_EQ(p->time().memoryStall, 0u);
    EXPECT_EQ(p->instructions(), 400u);
}

TEST(Processor, ColdLoadStallsOnUse)
{
    Rig rig;
    auto p = rig.runOps({Op::load(1 << 20, 8), Op::compute(400)});
    // The load misses everywhere (cold, 2-hop): after 8 instructions
    // (2 cycles) the pipeline stalls until the line returns.
    EXPECT_GT(p->time().memoryStall, 100u);
    EXPECT_EQ(p->time().busy, 100u);
}

TEST(Processor, LargeUseDistanceHidesLatency)
{
    Rig rig;
    // Warm the line first so the reload hits local memory (~40 cyc).
    auto warm = rig.runOps({Op::load(1 << 20, 8), Op::compute(400)});
    rig.m.compute(0)->l1().invalidateAll();
    rig.m.compute(0)->l2().invalidateAll();
    auto p = rig.runOps({Op::load(1 << 20, 4000), Op::compute(4000)});
    // 4000 instructions = 1000 cycles of work cover the local fetch.
    EXPECT_EQ(p->time().memoryStall, 0u);
}

TEST(Processor, IndependentLoadsOverlap)
{
    Rig rig;
    // Two independent cold misses to different lines issued back to
    // back must overlap: total stall far less than 2x one miss.
    auto p1 = rig.runOps({Op::load(1 << 20, 8), Op::compute(100)});
    const Tick one = p1->time().memoryStall;

    Rig rig2;
    auto p2 = rig2.runOps({Op::load(1 << 20, 400),
                           Op::load((1 << 20) + 4096, 400),
                           Op::load((1 << 20) + 8192, 400),
                           Op::compute(300)});
    EXPECT_LT(p2->time().memoryStall, 2 * one);
}

TEST(Processor, StoresRetireThroughWriteBuffer)
{
    Rig rig;
    auto p = rig.runOps({Op::store(1 << 20), Op::compute(400)});
    // The store drains in the background; busy time unaffected.
    EXPECT_EQ(p->time().busy, 100u);
    EXPECT_EQ(p->storesIssued(), 1u);
    EXPECT_EQ(p->writeBuffer().storesRetired(), 1u);
    // End-drain may add stall while the last store completes.
}

TEST(Processor, FullWriteBufferBackPressures)
{
    Rig rig;
    std::vector<Op> ops;
    for (int i = 0; i < 120; ++i)
        ops.push_back(Op::store((1 << 20) + i * 4096));
    auto p = rig.runOps(ops);
    EXPECT_EQ(p->writeBuffer().storesRetired(), 120u);
    EXPECT_GT(p->time().memoryStall, 0u); // buffer filled at some point
}

TEST(Processor, WriteBufferCoalescesSameLine)
{
    Rig rig;
    std::vector<Op> ops;
    // Saturate the in-flight store slots with distinct lines, then
    // hammer one line: the queued duplicates must coalesce.
    for (int i = 0; i < 20; ++i)
        ops.push_back(Op::store((1 << 20) + 4096 + i * 4096));
    for (int i = 0; i < 8; ++i)
        ops.push_back(Op::store((1 << 20) + (i % 2) * 8));
    auto p = rig.runOps(ops);
    EXPECT_GT(p->writeBuffer().coalesced(), 0u);
}

TEST(Processor, BarrierSynchronizesAndCountsSyncTime)
{
    Rig rig(2);
    const Addr bar = kSyncBase;
    auto p0 = std::make_unique<Processor>(rig.m.eq(),
                                          *rig.m.compute(0), rig.sync,
                                          0, rig.m.config().proc);
    auto p1 = std::make_unique<Processor>(rig.m.eq(),
                                          *rig.m.compute(1), rig.sync,
                                          1, rig.m.config().proc);
    rig.sync.setNumThreads(2);
    int done = 0;
    // Thread 0 reaches the barrier immediately; thread 1 computes for
    // a long time first. Thread 0's wait shows up as sync time.
    p0->run(std::make_unique<VectorStream>(std::vector<Op>{
                Op::barrier(bar), Op::compute(40)}),
            [&] { ++done; });
    p1->run(std::make_unique<VectorStream>(std::vector<Op>{
                Op::compute(40000), Op::barrier(bar)}),
            [&] { ++done; });
    rig.m.eq().run();
    ASSERT_EQ(done, 2);
    EXPECT_GT(p0->time().sync, 8000u);
    EXPECT_LT(p1->time().sync, p0->time().sync);
    EXPECT_EQ(rig.sync.barrierEpisodes(), 1u);
}

TEST(Processor, LocksAreMutuallyExclusiveAndQueued)
{
    Rig rig(2);
    const Addr lock = kSyncBase + 64;
    auto p0 = std::make_unique<Processor>(rig.m.eq(),
                                          *rig.m.compute(0), rig.sync,
                                          0, rig.m.config().proc);
    auto p1 = std::make_unique<Processor>(rig.m.eq(),
                                          *rig.m.compute(1), rig.sync,
                                          1, rig.m.config().proc);
    int done = 0;
    std::vector<Op> cs = {Op::lock(lock), Op::compute(20000),
                          Op::unlock(lock)};
    p0->run(std::make_unique<VectorStream>(cs), [&] { ++done; });
    p1->run(std::make_unique<VectorStream>(cs), [&] { ++done; });
    rig.m.eq().run();
    ASSERT_EQ(done, 2);
    // One of them waited for the other's 5000-cycle critical section.
    const Tick max_sync =
        std::max(p0->time().sync, p1->time().sync);
    EXPECT_GT(max_sync, 4500u);
    EXPECT_EQ(rig.sync.lockHandoffs(), 1u);
}

TEST(Processor, EndDrainWaitsForOutstanding)
{
    Rig rig;
    auto p = rig.runOps({Op::load(1 << 20, 1 << 30)});
    // The load's deadline is never reached, but End must still wait
    // for it before finishing.
    EXPECT_TRUE(p->finished());
    EXPECT_EQ(p->loadsIssued(), 1u);
}

TEST(Processor, CimOffloadStallsUntilReply)
{
    Rig rig;
    Op cim;
    cim.kind = Op::Kind::Cim;
    cim.addr = 1 << 20;
    cim.cimRecords = 100;
    cim.cimMatches = 10;
    auto p = rig.runOps({cim, Op::compute(40)});
    // 100 records at the default per-record cost dominate.
    EXPECT_GT(p->time().memoryStall,
              100 * rig.m.config().dnode.cimPerRecordCost / 2);
}

} // namespace
} // namespace pimdsm
