/**
 * @file
 * Tests for the wormhole 2D mesh: routing distances, unloaded latency
 * composition, link contention serialization, and delivery.
 */

#include <gtest/gtest.h>

#include <vector>

#include "net/mesh.hh"
#include "sim/log.hh"

namespace pimdsm
{
namespace
{

NetParams
testNet()
{
    NetParams p;
    p.meshX = 4;
    p.meshY = 4;
    p.linkBytesPerTick = 2;
    p.routerLatency = 4;
    p.wireLatency = 1;
    p.niLatency = 8;
    p.headerBytes = 16;
    return p;
}

TEST(Mesh, ManhattanHops)
{
    EventQueue eq;
    Mesh mesh(eq, testNet(), 16);
    EXPECT_EQ(mesh.hops(0, 0), 0);
    EXPECT_EQ(mesh.hops(0, 3), 3);   // same row
    EXPECT_EQ(mesh.hops(0, 12), 3);  // same column
    EXPECT_EQ(mesh.hops(0, 15), 6);  // corner to corner
    EXPECT_EQ(mesh.hops(5, 10), 2);
}

TEST(Mesh, UnloadedLatencyComposition)
{
    EventQueue eq;
    Mesh mesh(eq, testNet(), 16);
    // 0 -> 3: 3 hops * (4+1) + 2*8 NI + ser(16/2=8) = 15+16+8 = 39.
    EXPECT_EQ(mesh.unloadedLatency(0, 3, 0), 39u);
    // Payload adds serialization: (16+128)/2 = 72.
    EXPECT_EQ(mesh.unloadedLatency(0, 3, 128), 15u + 16u + 72u);
    // Self-send: just NI + serialization.
    EXPECT_EQ(mesh.unloadedLatency(5, 5, 0), 24u);
}

TEST(Mesh, DeliveryMatchesUnloadedLatencyWhenIdle)
{
    EventQueue eq;
    Mesh mesh(eq, testNet(), 16);
    Tick delivered = 0;
    mesh.send(0, 15, 128, [&] { delivered = eq.curTick(); });
    eq.run();
    EXPECT_EQ(delivered, mesh.unloadedLatency(0, 15, 128));
}

TEST(Mesh, ContentionSerializesSharedLink)
{
    EventQueue eq;
    Mesh mesh(eq, testNet(), 16);
    // Two messages from 0 to 1 compete for the same eastward link.
    Tick t1 = 0, t2 = 0;
    mesh.send(0, 1, 128, [&] { t1 = eq.curTick(); });
    mesh.send(0, 1, 128, [&] { t2 = eq.curTick(); });
    eq.run();
    const Tick ser = (16 + 128) / 2;
    EXPECT_EQ(t2 - t1, ser); // second waits a full serialization time
}

TEST(Mesh, DisjointPathsDoNotInterfere)
{
    EventQueue eq;
    Mesh mesh(eq, testNet(), 16);
    Tick t1 = 0, t2 = 0;
    mesh.send(0, 1, 128, [&] { t1 = eq.curTick(); });
    mesh.send(4, 5, 128, [&] { t2 = eq.curTick(); });
    eq.run();
    EXPECT_EQ(t1, t2);
    EXPECT_EQ(t1, mesh.unloadedLatency(0, 1, 128));
}

TEST(Mesh, StatsAccumulate)
{
    EventQueue eq;
    Mesh mesh(eq, testNet(), 16);
    mesh.send(0, 5, 64, [] {});
    mesh.send(3, 9, 0, [] {});
    eq.run();
    EXPECT_EQ(mesh.messagesSent(), 2u);
    EXPECT_EQ(mesh.bytesSent(), 64u + 16 + 16);
    EXPECT_GT(mesh.totalLinkBusy(), 0u);
}

TEST(Mesh, OutOfRangeNodePanics)
{
    EventQueue eq;
    Mesh mesh(eq, testNet(), 16);
    EXPECT_THROW(mesh.send(0, 99, 0, [] {}), PanicError);
}

TEST(Mesh, AverageUnloadedLatencyIsSane)
{
    EventQueue eq;
    Mesh mesh(eq, testNet(), 16);
    const Tick avg = mesh.averageUnloadedLatency(0);
    EXPECT_GT(avg, mesh.unloadedLatency(0, 1, 0) / 2);
    EXPECT_LT(avg, mesh.unloadedLatency(0, 15, 0));
}

TEST(Mesh, PlacementPermutationMovesNodes)
{
    EventQueue eq;
    Mesh mesh(eq, testNet(), 16);
    // Identity: nodes 0 and 1 are adjacent.
    EXPECT_EQ(mesh.hops(0, 1), 1);
    // Swap node 1 to the far corner.
    std::vector<int> placement(16);
    for (int i = 0; i < 16; ++i)
        placement[i] = i;
    std::swap(placement[1], placement[15]);
    mesh.setPlacement(placement);
    EXPECT_EQ(mesh.hops(0, 1), 6);
    EXPECT_EQ(mesh.hops(0, 15), 1);

    // Delivery still works under the permutation.
    Tick t = 0;
    mesh.send(0, 1, 0, [&] { t = eq.curTick(); });
    eq.run();
    EXPECT_EQ(t, mesh.unloadedLatency(0, 1, 0));
}

TEST(Mesh, PlacementMustCoverEveryNode)
{
    EventQueue eq;
    Mesh mesh(eq, testNet(), 16);
    EXPECT_THROW(mesh.setPlacement({0, 1, 2}), FatalError);
    std::vector<int> dup(16, 0); // node 1.. missing
    EXPECT_THROW(mesh.setPlacement(dup), FatalError);
}

TEST(Mesh, WiderLinksShortenSerialization)
{
    EventQueue eq;
    NetParams wide = testNet();
    wide.linkBytesPerTick = 4;
    Mesh narrow(eq, testNet(), 16);
    Mesh fat(eq, wide, 16);
    EXPECT_GT(narrow.unloadedLatency(0, 3, 128),
              fat.unloadedLatency(0, 3, 128));
}

} // namespace
} // namespace pimdsm
