/**
 * @file
 * Fault-injection and recovery: message classification, directed
 * drop/retry, the transaction watchdog, D-node failover, reboot, and
 * the determinism of seeded fault campaigns.
 */

#include <gtest/gtest.h>

#include <set>
#include <string>

#include "machine/machine.hh"
#include "machine/reconfig.hh"
#include "report/experiment.hh"
#include "sim/log.hh"
#include "workload/apps.hh"

namespace pimdsm
{
namespace
{

MachineConfig
smallCfg(ArchKind arch, int p, int d)
{
    MachineConfig cfg = makeBaseConfig(arch);
    cfg.numPNodes = p;
    cfg.numThreads = p;
    cfg.numDNodes = arch == ArchKind::Agg ? d : 0;
    cfg.pNodeMemBytes = 64 * 1024;
    cfg.dNodeMemBytes = 64 * 1024;
    cfg.l1 = CacheParams{1024, 1, 64, 3};
    cfg.l2 = CacheParams{4096, 1, 64, 6};
    // Oracle in relaxed mode (most of these runs inject faults):
    // recovery-path serialization slack is counted and warned, but
    // storage/oracle disagreement still panics via checkInvariants.
    cfg.check.enabled = true;
    fitMesh(cfg.net, cfg.totalNodes());
    cfg.validate();
    return cfg;
}

struct Tracker
{
    bool done = false;
    Tick when = 0;
    ReadService svc = ReadService::FLC;

    ComputeBase::CompletionFn
    fn()
    {
        return [this](Tick t, ReadService s) {
            done = true;
            when = t;
            svc = s;
        };
    }
};

Tracker
doAccess(Machine &m, NodeId n, Addr a, bool write)
{
    Tracker t;
    m.compute(n)->access(a, write, t.fn());
    m.eq().run();
    EXPECT_TRUE(t.done);
    return t;
}

constexpr Addr kLine = 1ull << 20;

// ----------------------------------------------------- classification

TEST(FaultModel, EveryMsgTypeHasADistinctName)
{
    std::set<std::string> names;
    for (int i = 0; i < kNumMsgTypes; ++i) {
        const char *name = msgTypeName(static_cast<MsgType>(i));
        ASSERT_NE(name, nullptr);
        EXPECT_STRNE(name, "?") << "unnamed MsgType " << i;
        EXPECT_TRUE(names.insert(name).second)
            << "duplicate name " << name;
    }
    EXPECT_EQ(names.size(), static_cast<std::size_t>(kNumMsgTypes));
}

TEST(FaultModel, OnlyRecoverableClassesAreDroppable)
{
    // Requests, replies and writebacks have a retry path; everything
    // else must never be silently lost.
    EXPECT_TRUE(msgClassDroppable(MsgClass::Request));
    EXPECT_TRUE(msgClassDroppable(MsgClass::Reply));
    EXPECT_TRUE(msgClassDroppable(MsgClass::WriteBack));
    EXPECT_FALSE(msgClassDroppable(MsgClass::Ack));
    EXPECT_FALSE(msgClassDroppable(MsgClass::Peer));
    EXPECT_FALSE(msgClassDroppable(MsgClass::Cim));
    EXPECT_FALSE(msgClassDroppable(MsgClass::Immune));
    // Acks are additionally dedup'd at the receiver, so duplication
    // is safe there too.
    EXPECT_TRUE(msgClassDupSafe(MsgClass::Ack));
    EXPECT_FALSE(msgClassDupSafe(MsgClass::Peer));

    // Every message type must land in a deliberate class.
    for (int i = 0; i < kNumMsgTypes; ++i) {
        const MsgType t = static_cast<MsgType>(i);
        EXPECT_NE(msgClassOf(t), MsgClass::Immune)
            << "unclassified type " << msgTypeName(t);
    }
    EXPECT_EQ(msgClassOf(MsgType::ReadReq), MsgClass::Request);
    EXPECT_EQ(msgClassOf(MsgType::ReadReply), MsgClass::Reply);
    EXPECT_EQ(msgClassOf(MsgType::WriteBack), MsgClass::WriteBack);
    EXPECT_EQ(msgClassOf(MsgType::InvalAck), MsgClass::Ack);
    EXPECT_EQ(msgClassOf(MsgType::Fwd), MsgClass::Peer);
    EXPECT_EQ(msgClassOf(MsgType::CimReq), MsgClass::Cim);
}

TEST(FaultModel, ConfigValidation)
{
    FaultConfig fc;
    EXPECT_FALSE(fc.enabled());
    EXPECT_NO_THROW(fc.validate());
    fc.setUniformDropRate(0.05);
    EXPECT_TRUE(fc.enabled());
    EXPECT_NO_THROW(fc.validate());
    fc.rates[static_cast<int>(MsgClass::Reply)].drop = 1.5;
    EXPECT_THROW(fc.validate(), FatalError);
}

// ----------------------------------------------------------- warn()

TEST(FaultModel, WarnDedupesUntilReset)
{
    warnResetForTest();
    EXPECT_TRUE(warn("test_faults: repeated warning"));
    EXPECT_FALSE(warn("test_faults: repeated warning"));
    warnResetForTest();
    EXPECT_TRUE(warn("test_faults: repeated warning"));
    warnResetForTest();
}

// ----------------------------------------------- directed drop/retry

TEST(FaultInjection, DroppedReadReplyIsRetriedAndCompletes)
{
    MachineConfig cfg = smallCfg(ArchKind::Agg, 2, 1);
    // Deterministically drop exactly the first reply on the mesh.
    cfg.faults.rates[static_cast<int>(MsgClass::Reply)].dropNth = 1;
    cfg.faults.timeoutTicks = 5000;
    cfg.faults.sweepInterval = 500;
    Machine m(cfg);

    auto t = doAccess(m, 0, kLine, false);
    EXPECT_TRUE(t.done);
    // The retry detour went through the timeout sweep.
    EXPECT_GT(t.when, cfg.faults.timeoutTicks);
    EXPECT_EQ(m.stats().get("fault.net.drop"), 1.0);
    EXPECT_EQ(m.stats().get("fault.retries"), 1.0);
    EXPECT_EQ(m.mesh().totalDrops(), 1u);
    // The retried request hit the home's served-transaction cache.
    EXPECT_EQ(m.stats().get("home.reply_replayed"), 1.0);

    // The machine is fully recovered: later traffic behaves normally.
    auto t2 = doAccess(m, 1, kLine, true);
    EXPECT_TRUE(t2.done);
    m.checkInvariants();
}

TEST(FaultInjection, DroppedRequestIsRetriedAndCompletes)
{
    MachineConfig cfg = smallCfg(ArchKind::Agg, 2, 1);
    cfg.faults.rates[static_cast<int>(MsgClass::Request)].dropNth = 1;
    cfg.faults.timeoutTicks = 5000;
    cfg.faults.sweepInterval = 500;
    Machine m(cfg);

    auto t = doAccess(m, 0, kLine, true);
    EXPECT_TRUE(t.done);
    EXPECT_EQ(m.stats().get("fault.net.drop"), 1.0);
    EXPECT_EQ(m.stats().get("fault.retries"), 1.0);
    // The request never arrived, so there was nothing to replay.
    EXPECT_EQ(m.stats().get("home.reply_replayed"), 0.0);
    m.checkInvariants();
}

TEST(FaultInjection, DuplicatedReplyIsIgnoredOnce)
{
    MachineConfig cfg = smallCfg(ArchKind::Agg, 2, 1);
    cfg.faults.rates[static_cast<int>(MsgClass::Reply)].duplicate = 1.0;
    Machine m(cfg);

    auto t = doAccess(m, 0, kLine, false);
    EXPECT_TRUE(t.done);
    EXPECT_GT(m.stats().get("fault.net.dup"), 0.0);
    // The copy lands either while the MSHR is live (dup) or after it
    // retired (orphan); both are absorbed without a state change.
    EXPECT_GT(m.stats().get("fault.dup_reply") +
                  m.stats().get("fault.orphan_reply"),
              0.0);
    m.checkInvariants();
}

// ------------------------------------------------------------ watchdog

TEST(FaultInjection, TotalLossTripsWatchdogWithDiagnostic)
{
    auto wl = makeWorkload("fft", 1);
    BuildSpec spec;
    spec.arch = ArchKind::Agg;
    spec.threads = 2;
    spec.pressure = 0.25;
    MachineConfig cfg = buildConfig(*wl, spec);
    cfg.faults.setUniformDropRate(1.0);
    cfg.faults.timeoutTicks = 2000;
    cfg.faults.sweepInterval = 500;
    cfg.faults.retryLimit = 2;

    warnResetForTest();
    try {
        runWorkload(cfg, *wl);
        FAIL() << "expected the watchdog to panic";
    } catch (const PanicError &e) {
        const std::string what = e.what();
        // The watchdog names itself and the stuck transactions.
        EXPECT_NE(what.find("watchdog"), std::string::npos) << what;
        EXPECT_NE(what.find("line 0x"), std::string::npos) << what;
        EXPECT_NE(what.find("node"), std::string::npos) << what;
    }
    warnResetForTest();
}

// ------------------------------------------------- failover + reboot

TEST(Failover, DNodeDeathMidRunFailsOverAndCompletes)
{
    auto wl = makeWorkload("radix", 1);
    BuildSpec spec;
    spec.arch = ArchKind::Agg;
    spec.threads = 4;
    spec.dNodes = 2;
    spec.pressure = 0.25;
    MachineConfig cfg = buildConfig(*wl, spec);
    // Kill the first D-node early in the run.
    cfg.faults.deaths.push_back(
        DNodeDeath{10'000, static_cast<NodeId>(cfg.numPNodes)});
    cfg.faults.timeoutTicks = 5000;
    cfg.faults.sweepInterval = 1000;

    RunOptions opts;
    opts.checkInvariants = true;
    const RunResult r = runWorkload(cfg, *wl, opts);

    EXPECT_EQ(r.failovers, 1);
    EXPECT_GT(r.failoverTicks, 0u);
    EXPECT_EQ(r.counters.at("fault.failovers"), 1.0);
    // The survivors absorbed the dead node's pages.
    EXPECT_GT(r.counters.at("fault.failover_pages"), 0.0);
    EXPECT_EQ(static_cast<int>(r.phases.size()), wl->numPhases());
}

TEST(Failover, SlowdownIsReportedAgainstCleanRun)
{
    auto wl = makeWorkload("radix", 1);
    BuildSpec spec;
    spec.arch = ArchKind::Agg;
    spec.threads = 4;
    spec.dNodes = 2;
    spec.pressure = 0.25;

    const MachineConfig clean = buildConfig(*wl, spec);
    const RunResult base = runWorkload(clean, *wl);

    MachineConfig cfg = clean;
    cfg.faults.deaths.push_back(
        DNodeDeath{10'000, static_cast<NodeId>(cfg.numPNodes)});
    const RunResult faulty = runWorkload(cfg, *wl);

    // Losing half the directory capacity cannot speed the run up.
    EXPECT_GE(faulty.totalTicks, base.totalTicks);
}

TEST(Failover, ManualFailoverThenReboot)
{
    MachineConfig cfg = smallCfg(ArchKind::Agg, 2, 2);
    // A far-future death enables the fault machinery without firing.
    cfg.faults.deaths.push_back(
        DNodeDeath{1'000'000'000'000ull, 2});
    Machine m(cfg);

    // Touch a line so node 2 owns directory state, then kill it.
    doAccess(m, 0, kLine, false);
    const NodeId home0 = m.pageMap().homeOf(kLine);
    ASSERT_EQ(m.directoryNodes().size(), 2u);

    const FailoverResult fr = failOverDNode(m, home0);
    EXPECT_TRUE(m.isDead(home0));
    EXPECT_GT(fr.cost, 0u);
    EXPECT_GT(fr.pagesMoved, 0u);
    EXPECT_EQ(m.directoryNodes().size(), 1u);
    const NodeId home1 = m.pageMap().homeOf(kLine);
    EXPECT_NE(home1, home0);

    // The line is still reachable through the surviving home.
    auto t = doAccess(m, 1, kLine, true);
    EXPECT_TRUE(t.done);
    m.checkInvariants();

    // Reboot the chip as a fresh D-node; it serves again.
    rebootNode(m, home0, NodeRole::Directory);
    EXPECT_FALSE(m.isDead(home0));
    EXPECT_EQ(m.directoryNodes().size(), 2u);
    EXPECT_EQ(m.stats().get("fault.reboots"), 1.0);
    auto t2 = doAccess(m, 0, kLine + (1ull << 21), false);
    EXPECT_TRUE(t2.done);
    m.checkInvariants();
}

// --------------------------------------------------------- determinism

TEST(FaultInjection, SeededLossyRunIsBitIdentical)
{
    auto wl = makeWorkload("fft", 1);
    BuildSpec spec;
    spec.arch = ArchKind::Agg;
    spec.threads = 4;
    spec.pressure = 0.25;
    MachineConfig cfg = buildConfig(*wl, spec);
    cfg.faults.setUniformDropRate(0.02);
    cfg.faults.seed = 0xfeedbeefull;
    cfg.faults.timeoutTicks = 5000;
    cfg.faults.sweepInterval = 1000;

    warnResetForTest();
    const RunResult r1 = runWorkload(cfg, *wl);
    warnResetForTest();
    const RunResult r2 = runWorkload(cfg, *wl);
    warnResetForTest();

    EXPECT_GT(r1.counters.at("fault.net.drop"), 0.0);
    EXPECT_GT(r1.counters.at("fault.retries"), 0.0);
    EXPECT_EQ(r1.totalTicks, r2.totalTicks);
    EXPECT_EQ(r1.messages, r2.messages);
    EXPECT_EQ(r1.counters, r2.counters);
}

class EveryWorkloadLossy : public ::testing::TestWithParam<std::string>
{
};

TEST_P(EveryWorkloadLossy, FivePercentDropCompletesWithRetries)
{
    auto wl = makeWorkload(GetParam(), 1);
    BuildSpec spec;
    spec.arch = ArchKind::Agg;
    spec.threads = 4;
    spec.pressure = 0.25;
    MachineConfig cfg = buildConfig(*wl, spec);
    cfg.faults.setUniformDropRate(0.05);
    cfg.faults.timeoutTicks = 5000;
    cfg.faults.sweepInterval = 1000;

    warnResetForTest();
    RunOptions opts;
    opts.checkInvariants = true;
    const RunResult r = runWorkload(cfg, *wl, opts);
    EXPECT_GT(r.counters.at("fault.net.drop"), 0.0);
    EXPECT_GT(r.counters.at("fault.retries"), 0.0);
    EXPECT_EQ(static_cast<int>(r.phases.size()), wl->numPhases());
    warnResetForTest();
}

INSTANTIATE_TEST_SUITE_P(
    Apps, EveryWorkloadLossy,
    ::testing::ValuesIn(paperWorkloadNames()),
    [](const ::testing::TestParamInfo<std::string> &info) {
        return info.param;
    });

TEST(FaultInjection, ModerateLossCompletesOnEveryArch)
{
    for (ArchKind arch :
         {ArchKind::Agg, ArchKind::Numa, ArchKind::Coma}) {
        auto wl = makeWorkload("fft", 1);
        BuildSpec spec;
        spec.arch = arch;
        spec.threads = 4;
        spec.pressure = 0.25;
        MachineConfig cfg = buildConfig(*wl, spec);
        cfg.faults.setUniformDropRate(0.02);
        cfg.faults.timeoutTicks = 5000;
        cfg.faults.sweepInterval = 1000;

        warnResetForTest();
        RunOptions opts;
        opts.checkInvariants = true;
        const RunResult r = runWorkload(cfg, *wl, opts);
        EXPECT_GT(r.totalTicks, 0u) << archName(arch);
        EXPECT_EQ(static_cast<int>(r.phases.size()), wl->numPhases())
            << archName(arch);
        warnResetForTest();
    }
}

} // namespace
} // namespace pimdsm
