/**
 * @file
 * Tests for the reporting layer: table/bar rendering and the
 * experiment runner's aggregate bookkeeping.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

#include "report/experiment.hh"
#include "report/report.hh"
#include "workload/apps.hh"

namespace pimdsm
{
namespace
{

TEST(TablePrinterTest, AlignsColumnsAndFormatsNumbers)
{
    TablePrinter t({"name", "value"});
    t.addRow({"alpha", TablePrinter::num(1.2345)});
    t.addRow({"a-much-longer-name", TablePrinter::pct(0.5)});
    std::ostringstream os;
    t.print(os);
    const std::string s = os.str();
    EXPECT_NE(s.find("| alpha"), std::string::npos);
    EXPECT_NE(s.find("1.23"), std::string::npos);
    EXPECT_NE(s.find("50.0%"), std::string::npos);
    // Every rendered line has the same width.
    std::istringstream in(s);
    std::string line;
    std::size_t width = 0;
    while (std::getline(in, line)) {
        if (width == 0)
            width = line.size();
        EXPECT_EQ(line.size(), width);
    }
}

TEST(TablePrinterTest, NumPrecision)
{
    EXPECT_EQ(TablePrinter::num(3.14159, 0), "3");
    EXPECT_EQ(TablePrinter::num(3.14159, 3), "3.142");
    EXPECT_EQ(TablePrinter::pct(0.1234, 2), "12.34%");
}

TEST(PrintBarsTest, RendersSegmentsProportionally)
{
    std::ostringstream os;
    printBars(os, "demo", {"A", "B"},
              {{"barhalf", {0.25, 0.25}}, {"barfull", {0.5, 0.5}}});
    const std::string s = os.str();
    EXPECT_NE(s.find("demo"), std::string::npos);
    EXPECT_NE(s.find("A"), std::string::npos);
    EXPECT_NE(s.find("0.50"), std::string::npos);
    EXPECT_NE(s.find("1.00"), std::string::npos);
    // The full bar draws about twice the glyphs of the half bar.
    const auto count = [&](const std::string &row) {
        const auto pos = s.find(row);
        const auto eol = s.find('\n', pos);
        const std::string line = s.substr(pos, eol - pos);
        return std::count(line.begin(), line.end(), '#') +
               std::count(line.begin(), line.end(), '=');
    };
    EXPECT_NEAR(static_cast<double>(count("barfull")),
                2.0 * count("barhalf"), 3.0);
}

TEST(ExperimentRunner, AggregatesAreConsistent)
{
    auto wl = makeWorkload("swim", 1);
    BuildSpec spec;
    spec.arch = ArchKind::Agg;
    spec.threads = 4;
    spec.pressure = 0.5;
    const RunResult r = runWorkload(*wl, spec);

    // Phase windows tile the run.
    Tick prev_end = 0;
    for (const auto &p : r.phases) {
        EXPECT_GE(p.startTick, prev_end);
        EXPECT_GE(p.endTick, p.startTick);
        prev_end = p.endTick;
    }
    EXPECT_EQ(r.totalTicks, r.phases.back().endTick);

    // Per-thread time splits are bounded by 4 threads x wall clock.
    EXPECT_LE(r.time.total(), 4 * r.totalTicks + 4);
    EXPECT_GE(r.memoryFraction(), 0.0);
    EXPECT_LE(r.memoryFraction(), 1.0);

    // Read categories add up.
    EXPECT_EQ(r.reads.totalAllCount(),
              r.reads.count[0] + r.reads.count[1] + r.reads.count[2] +
                  r.reads.count[3] + r.reads.count[4]);
    EXPECT_GT(r.instructions, 0u);
}

TEST(ExperimentRunner, DeterministicAcrossRuns)
{
    auto wl = makeWorkload("radix", 1);
    BuildSpec spec;
    spec.arch = ArchKind::Coma;
    spec.threads = 4;
    spec.pressure = 0.5;
    const RunResult a = runWorkload(*wl, spec);
    const RunResult b = runWorkload(*wl, spec);
    EXPECT_EQ(a.totalTicks, b.totalTicks);
    EXPECT_EQ(a.messages, b.messages);
    EXPECT_EQ(a.instructions, b.instructions);
    EXPECT_EQ(a.reads.totalAllLatency(), b.reads.totalAllLatency());
}

} // namespace
} // namespace pimdsm
