/**
 * @file
 * Calibration against Table 1: uncontended round-trip latencies of
 * each level of the hierarchy on paper-sized machines. Tolerances are
 * generous (the paper reports "average" values) but anchor the cost
 * model.
 */

#include <gtest/gtest.h>

#include "machine/machine.hh"

namespace pimdsm
{
namespace
{

MachineConfig
paperCfg(ArchKind arch)
{
    MachineConfig cfg = makeBaseConfig(arch);
    cfg.pNodeMemBytes = 1 << 20;
    cfg.dNodeMemBytes = 1 << 20;
    return cfg;
}

Tick
measure(Machine &m, NodeId n, Addr a, bool write = false)
{
    const Tick start = m.eq().curTick();
    Tick done = 0;
    m.compute(n)->access(a, write, [&](Tick t, ReadService) {
        done = t;
    });
    m.eq().run();
    EXPECT_GT(done, start);
    return done - start;
}

TEST(Calibration, L1AndL2HitLatencies)
{
    Machine m(paperCfg(ArchKind::Agg));
    const Addr a = 1ull << 20;
    measure(m, 0, a);                      // warm everything
    EXPECT_EQ(measure(m, 0, a), 3u);       // L1 hit (Table 1: 3)
    m.compute(0)->l1().invalidateAll();
    EXPECT_EQ(measure(m, 0, a), 6u);       // L2 hit (Table 1: 6)
}

TEST(Calibration, LocalMemoryHitNearTableValues)
{
    Machine m(paperCfg(ArchKind::Agg));
    const Addr a = 1ull << 20;
    measure(m, 0, a); // warm tagged memory
    m.compute(0)->l1().invalidateAll();
    m.compute(0)->l2().invalidateAll();
    const Tick lat = measure(m, 0, a);
    // Table 1: 37 (on-chip) / 57 (off-chip) round trip.
    EXPECT_GE(lat, 35u);
    EXPECT_LE(lat, 60u);
}

TEST(Calibration, NumaRemoteTwoHopNear298)
{
    Machine m(paperCfg(ArchKind::Numa));
    const Addr a = 1ull << 20;
    measure(m, 0, a); // first touch: page homed at node 0
    // Average over requesters at different distances, using distinct
    // cold lines of the same page (all homed at node 0).
    double sum = 0;
    int n = 0;
    for (NodeId r : {1, 5, 12, 18, 27, 31}) {
        const Addr line = (1ull << 20) + 128 * (n + 1);
        sum += static_cast<double>(measure(m, r, line));
        ++n;
    }
    const double avg = sum / n;
    EXPECT_NEAR(avg, 298.0, 298.0 * 0.25); // Table 1: 298
}

TEST(Calibration, NumaRemoteThreeHopNear383)
{
    Machine m(paperCfg(ArchKind::Numa));
    double sum = 0;
    int n = 0;
    for (NodeId owner : {3, 9, 22}) {
        const Addr line = (1ull << 20) + 4096 * (n + 5);
        measure(m, 0, line);        // home at node 0
        measure(m, owner, line, true); // dirty at remote owner
        const NodeId reader = owner == 3 ? 28 : 6;
        sum += static_cast<double>(measure(m, reader, line));
        ++n;
    }
    const double avg = sum / n;
    EXPECT_NEAR(avg, 383.0, 383.0 * 0.30); // Table 1: 383
}

TEST(Calibration, AggRemoteCostsMoreThanNumaRemote)
{
    // Software handlers + narrower links make an AGG 2-hop read
    // costlier than NUMA's hardware path — the paper's premise that
    // AGG wins by *avoiding* remote accesses, not by making them fast.
    Machine numa(paperCfg(ArchKind::Numa));
    const Addr a = 1ull << 20;
    measure(numa, 0, a);
    const Tick numa2hop = measure(numa, 9, a);

    Machine agg(paperCfg(ArchKind::Agg));
    const Tick agg2hop = measure(agg, 9, a); // cold read via D-node
    EXPECT_GT(agg2hop, numa2hop);
    EXPECT_LT(agg2hop, 3 * numa2hop);
}

TEST(Calibration, HardwareFactorSpeedsNumaHandlers)
{
    MachineConfig cfg = paperCfg(ArchKind::Numa);
    cfg.handlers.hardwareFactor = 1.0;
    Machine slow(cfg);
    const Addr a = 1ull << 20;
    measure(slow, 0, a);
    const Tick t_slow = measure(slow, 9, a);

    Machine fast(paperCfg(ArchKind::Numa)); // 0.7 default
    measure(fast, 0, a);
    const Tick t_fast = measure(fast, 9, a);
    EXPECT_LT(t_fast, t_slow);
}

TEST(Calibration, MemoryBandwidthOccupancyMatchesTable)
{
    // Table 1: 32 B per CPU clock => a 128 B line occupies 4 cycles.
    MachineConfig cfg = paperCfg(ArchKind::Agg);
    EXPECT_EQ(ceilDiv(static_cast<std::uint64_t>(cfg.mem.lineBytes),
                      static_cast<std::uint64_t>(
                          cfg.mem.bandwidthBytesPerTick)),
              4u);
}

} // namespace
} // namespace pimdsm
