/**
 * @file
 * Directed coherence-protocol tests on small machines: cold reads and
 * mastership grants, sharing, invalidation, upgrades, forwards (2- and
 * 3-hop), writebacks, SharedList reuse, COMA mastership transfer and
 * injection, NUMA locality.
 */

#include <gtest/gtest.h>

#include "machine/machine.hh"
#include "sim/log.hh"

namespace pimdsm
{
namespace
{

MachineConfig
smallCfg(ArchKind arch, int p, int d)
{
    MachineConfig cfg = makeBaseConfig(arch);
    cfg.numPNodes = p;
    cfg.numThreads = p;
    cfg.numDNodes = arch == ArchKind::Agg ? d : 0;
    cfg.pNodeMemBytes = 64 * 1024;
    cfg.dNodeMemBytes = 64 * 1024;
    cfg.l1 = CacheParams{1024, 1, 64, 3};
    cfg.l2 = CacheParams{4096, 1, 64, 6};
    fitMesh(cfg.net, cfg.totalNodes());
    cfg.validate();
    return cfg;
}

struct Tracker
{
    bool done = false;
    Tick when = 0;
    ReadService svc = ReadService::FLC;

    ComputeBase::CompletionFn
    fn()
    {
        return [this](Tick t, ReadService s) {
            done = true;
            when = t;
            svc = s;
        };
    }
};

/** Issue one access and run to completion. */
Tracker
doAccess(Machine &m, NodeId n, Addr a, bool write)
{
    Tracker t;
    m.compute(n)->access(a, write, t.fn());
    m.eq().run();
    EXPECT_TRUE(t.done);
    return t;
}

const Addr kA = kInvalidAddr; // unused marker
constexpr Addr kLine = 1ull << 20;

// ---------------------------------------------------------------- AGG

TEST(AggProtocol, ColdReadGrantsMastershipAndLinksSharedList)
{
    Machine m(smallCfg(ArchKind::Agg, 2, 1));
    (void)kA;
    auto t = doAccess(m, 0, kLine, false);
    EXPECT_EQ(t.svc, ReadService::Hop2);

    auto *p0 = static_cast<CachedMemCompute *>(m.compute(0));
    EXPECT_EQ(p0->peekState(kLine), CohState::SharedMaster);

    auto *home = static_cast<AggDNodeHome *>(m.home(2));
    const DirEntry *e = home->directory().find(kLine);
    ASSERT_NE(e, nullptr);
    EXPECT_EQ(e->state, DirEntry::State::Shared);
    EXPECT_TRUE(e->masterOut);
    EXPECT_EQ(e->owner, 0);
    EXPECT_TRUE(e->homeHasData);
    EXPECT_EQ(home->store().sharedLen(), 1u);
    EXPECT_FALSE(e->busy);
    m.checkInvariants();
}

TEST(AggProtocol, SecondReaderGetsPlainShared)
{
    Machine m(smallCfg(ArchKind::Agg, 2, 1));
    doAccess(m, 0, kLine, false);
    doAccess(m, 1, kLine, false);
    auto *p1 = static_cast<CachedMemCompute *>(m.compute(1));
    EXPECT_EQ(p1->peekState(kLine), CohState::Shared);
    const DirEntry *e = m.home(2)->directory().find(kLine);
    EXPECT_TRUE(e->isSharer(0));
    EXPECT_TRUE(e->isSharer(1));
    EXPECT_EQ(e->owner, 0); // master unchanged
}

TEST(AggProtocol, LocalMemoryHitAfterCaching)
{
    Machine m(smallCfg(ArchKind::Agg, 2, 1));
    doAccess(m, 0, kLine, false);
    // Evict from L1/L2 by touching conflicting lines, then re-access:
    // the tagged local memory should serve it without the network.
    auto *p0 = m.compute(0);
    p0->l1().invalidateAll();
    p0->l2().invalidateAll();
    const auto msgs_before = m.messagesSent();
    auto t = doAccess(m, 0, kLine, false);
    EXPECT_EQ(t.svc, ReadService::LocalMem);
    EXPECT_EQ(m.messagesSent(), msgs_before);
}

TEST(AggProtocol, WriteInvalidatesSharersAndFreesHomeSlot)
{
    Machine m(smallCfg(ArchKind::Agg, 3, 1));
    doAccess(m, 0, kLine, false);
    doAccess(m, 1, kLine, false);

    auto *home = static_cast<AggDNodeHome *>(m.home(3));
    const auto free_before = home->store().freeLen();
    doAccess(m, 2, kLine, true);

    auto *p0 = static_cast<CachedMemCompute *>(m.compute(0));
    auto *p1 = static_cast<CachedMemCompute *>(m.compute(1));
    auto *p2 = static_cast<CachedMemCompute *>(m.compute(2));
    EXPECT_EQ(p0->peekState(kLine), CohState::Invalid);
    EXPECT_EQ(p1->peekState(kLine), CohState::Invalid);
    EXPECT_EQ(p2->peekState(kLine), CohState::Dirty);

    const DirEntry *e = home->directory().find(kLine);
    EXPECT_EQ(e->state, DirEntry::State::Dirty);
    EXPECT_EQ(e->owner, 2);
    EXPECT_FALSE(e->homeHasData);
    // The dirty line keeps no home placeholder: slot reclaimed.
    EXPECT_EQ(home->store().freeLen(), free_before + 1);
    m.checkInvariants();
}

TEST(AggProtocol, ReadOfDirtyLineIsThreeHop)
{
    Machine m(smallCfg(ArchKind::Agg, 2, 1));
    doAccess(m, 0, kLine, true);
    auto t = doAccess(m, 1, kLine, false);
    EXPECT_EQ(t.svc, ReadService::Hop3);

    // Owner downgraded to SharedMaster; home regained a copy via the
    // sharing writeback.
    auto *p0 = static_cast<CachedMemCompute *>(m.compute(0));
    EXPECT_EQ(p0->peekState(kLine), CohState::SharedMaster);
    m.eq().run();
    const DirEntry *e = m.home(2)->directory().find(kLine);
    EXPECT_EQ(e->state, DirEntry::State::Shared);
    EXPECT_TRUE(e->masterOut);
    EXPECT_TRUE(e->homeHasData);
    m.checkInvariants();
}

TEST(AggProtocol, WriteToDirtyLineForwardsExclusive)
{
    Machine m(smallCfg(ArchKind::Agg, 2, 1));
    doAccess(m, 0, kLine, true);
    auto t = doAccess(m, 1, kLine, true);
    EXPECT_EQ(t.svc, ReadService::Hop3);
    auto *p0 = static_cast<CachedMemCompute *>(m.compute(0));
    auto *p1 = static_cast<CachedMemCompute *>(m.compute(1));
    EXPECT_EQ(p0->peekState(kLine), CohState::Invalid);
    EXPECT_EQ(p1->peekState(kLine), CohState::Dirty);
    m.checkInvariants();
}

TEST(AggProtocol, UpgradeFromSharedIsDataless)
{
    Machine m(smallCfg(ArchKind::Agg, 2, 1));
    doAccess(m, 0, kLine, false);
    const auto v1 = m.latestVersion(kLine);
    doAccess(m, 0, kLine, true); // SharedMaster -> Dirty upgrade
    EXPECT_EQ(m.latestVersion(kLine), v1 + 1);
    auto *p0 = static_cast<CachedMemCompute *>(m.compute(0));
    EXPECT_EQ(p0->peekState(kLine), CohState::Dirty);
    const DirEntry *e = m.home(2)->directory().find(kLine);
    EXPECT_EQ(e->state, DirEntry::State::Dirty);
    EXPECT_FALSE(e->masterOut);
    m.checkInvariants();
}

TEST(AggProtocol, SequentialWritesBumpVersions)
{
    Machine m(smallCfg(ArchKind::Agg, 4, 2));
    for (int round = 0; round < 3; ++round) {
        for (NodeId n = 0; n < 4; ++n)
            doAccess(m, n, kLine, true);
    }
    EXPECT_EQ(m.latestVersion(kLine), 12u);
    m.checkInvariants();
}

TEST(AggProtocol, SharedListReuseCausesThreeHopRead)
{
    // A 1-entry... use a tiny D-node so SharedList reuse is forced.
    MachineConfig cfg = smallCfg(ArchKind::Agg, 2, 1);
    cfg.dNodeMemBytes = 4096; // ~26 data slots (128 B + 24 B metadata)
    Machine m(cfg);
    auto *home = static_cast<AggDNodeHome *>(m.home(2));
    const auto slots = home->store().dataEntries();

    // Node 0 cold-reads more lines than the D-node has slots: every
    // read grants mastership, so every slot is reclaimable, and the
    // store reuses SharedList entries once FreeList runs dry.
    for (std::uint64_t i = 0; i < slots + 4; ++i)
        doAccess(m, 0, kLine + i * 128, false);
    EXPECT_GT(home->sharedListReuses(), 0u);

    // The first line's home copy was dropped; its master is still
    // node 0, so node 1's read is served by a 3-hop forward.
    auto t = doAccess(m, 1, kLine, false);
    EXPECT_EQ(t.svc, ReadService::Hop3);
    m.checkInvariants();
}

TEST(AggProtocol, EvictionWritesBackOwnedLines)
{
    MachineConfig cfg = smallCfg(ArchKind::Agg, 1, 1);
    cfg.pNodeMemBytes = 4096; // 8 sets x 4 ways of 128 B
    Machine m(cfg);
    auto *home = static_cast<AggDNodeHome *>(m.home(1));

    // Write 5 lines mapping to the same local-memory set.
    const Addr stride = 8 * 128;
    for (int i = 0; i < 5; ++i)
        doAccess(m, 0, kLine + i * stride, true);
    m.eq().run();

    // One dirty line was displaced and written back home.
    EXPECT_GE(m.compute(0)->writeBacksSent(), 1u);
    EXPECT_GE(home->writeBacksServed(), 1u);
    int dirty_at_home = 0;
    home->directory().forEach([&](Addr, const DirEntry &e) {
        if (e.state == DirEntry::State::Uncached && e.homeHasData)
            ++dirty_at_home;
    });
    EXPECT_GE(dirty_at_home, 1);
    m.checkInvariants();
}

TEST(AggProtocol, StaleSharerInvalIsAcked)
{
    MachineConfig cfg = smallCfg(ArchKind::Agg, 2, 1);
    cfg.pNodeMemBytes = 4096;
    Machine m(cfg);
    // Node 0 reads a line, then silently drops it through conflict
    // evictions (shared non-master copies drop silently).
    doAccess(m, 0, kLine, false);          // master
    doAccess(m, 1, kLine, false);          // plain shared at node 1
    const Addr stride = 8 * 128;
    for (int i = 1; i < 6; ++i)
        doAccess(m, 1, kLine + i * stride, false);
    // Node 1 may or may not still hold the line; a write must complete
    // either way (stale sharers ack invalidations).
    auto t = doAccess(m, 0, kLine, true);
    EXPECT_TRUE(t.done);
    m.checkInvariants();
}

// --------------------------------------------------------------- NUMA

TEST(NumaProtocol, LocalCleanReadAvoidsNetwork)
{
    Machine m(smallCfg(ArchKind::Numa, 2, 0));
    auto t = doAccess(m, 0, kLine, false); // first touch: home = node 0
    EXPECT_EQ(t.svc, ReadService::LocalMem);
    // Uncontended local read lands near the Table 1 value (37/57).
    EXPECT_LE(t.when, 90u);
    EXPECT_EQ(m.messagesSent(), 0u); // self-sends bypass the mesh
}

TEST(NumaProtocol, NoMastershipGrants)
{
    Machine m(smallCfg(ArchKind::Numa, 2, 0));
    doAccess(m, 0, kLine, false);
    const DirEntry *e = m.home(0)->directory().find(kLine);
    ASSERT_NE(e, nullptr);
    EXPECT_FALSE(e->masterOut);
    EXPECT_TRUE(e->homeHasData);
}

TEST(NumaProtocol, RemoteReadIsTwoHop)
{
    Machine m(smallCfg(ArchKind::Numa, 2, 0));
    doAccess(m, 0, kLine, false); // home at node 0
    auto t = doAccess(m, 1, kLine, false);
    EXPECT_EQ(t.svc, ReadService::Hop2);
}

TEST(NumaProtocol, RemoteDirtyReadIsThreeHop)
{
    Machine m(smallCfg(ArchKind::Numa, 3, 0));
    doAccess(m, 0, kLine, false); // home at 0
    doAccess(m, 1, kLine, true);  // dirty at 1
    auto t = doAccess(m, 2, kLine, false);
    EXPECT_EQ(t.svc, ReadService::Hop3);
    // Owner downgraded to plain Shared (no master state in NUMA).
    m.eq().run();
    const DirEntry *e = m.home(0)->directory().find(kLine);
    EXPECT_EQ(e->state, DirEntry::State::Shared);
    EXPECT_FALSE(e->masterOut);
    EXPECT_TRUE(e->homeHasData); // sharing writeback restored memory
    m.checkInvariants();
}

TEST(NumaProtocol, DirtyEvictionWritesBackToHome)
{
    MachineConfig cfg = smallCfg(ArchKind::Numa, 2, 0);
    Machine m(cfg);
    doAccess(m, 1, kLine, true); // home at node 1... first touch
    // Write many conflicting lines at node 1 to evict the first.
    // L2 is 4 KB of 128 B lines = 32 entries, direct mapped.
    for (int i = 1; i <= 33; ++i)
        doAccess(m, 1, kLine + i * 4096, true);
    m.eq().run();
    EXPECT_GE(m.compute(1)->writeBacksSent(), 1u);
    m.checkInvariants();
}

// --------------------------------------------------------------- COMA

TEST(ComaProtocol, ColdReadMaterializesMasterAtRequester)
{
    Machine m(smallCfg(ArchKind::Coma, 2, 0));
    doAccess(m, 1, kLine, false); // home = first toucher = node 1
    auto *am1 = static_cast<CachedMemCompute *>(m.compute(1));
    EXPECT_EQ(am1->peekState(kLine), CohState::SharedMaster);
    const DirEntry *e = m.home(1)->directory().find(kLine);
    EXPECT_TRUE(e->masterOut);
    EXPECT_EQ(e->owner, 1);
    EXPECT_FALSE(e->homeHasData); // COMA homes never back lines
}

TEST(ComaProtocol, HomeNodeAttractionMemoryServesTwoHop)
{
    Machine m(smallCfg(ArchKind::Coma, 3, 0));
    doAccess(m, 0, kLine, false); // home + master at node 0
    auto t = doAccess(m, 1, kLine, false);
    EXPECT_EQ(t.svc, ReadService::Hop2); // home's own AM supplied data
    m.checkInvariants();
}

TEST(ComaProtocol, MasterEvictionTransfersMastershipToSharer)
{
    MachineConfig cfg = smallCfg(ArchKind::Coma, 3, 0);
    cfg.pNodeMemBytes = 4096;
    Machine m(cfg);
    doAccess(m, 0, kLine, false); // home/master at 0
    doAccess(m, 1, kLine, false); // sharer at 1
    // Evict the master copy at node 0 with conflicting reads.
    const Addr stride = 8 * 128;
    for (int i = 1; i < 8; ++i)
        doAccess(m, 0, kLine + i * stride, false);
    m.eq().run();

    auto *home = static_cast<ComaHome *>(m.home(0));
    const DirEntry *e = home->directory().find(kLine);
    // Mastership must survive somewhere (grant to sharer 1, or via
    // injection if the grant raced with a silent drop).
    EXPECT_TRUE(e->masterOut || e->state == DirEntry::State::Dirty ||
                e->pagedOut);
    m.checkInvariants();
}

TEST(ComaProtocol, DirtyEvictionInjectsToProvider)
{
    MachineConfig cfg = smallCfg(ArchKind::Coma, 3, 0);
    cfg.pNodeMemBytes = 4096;
    Machine m(cfg);
    doAccess(m, 0, kLine, true); // dirty at 0 (sole copy)
    const Addr stride = 8 * 128;
    for (int i = 1; i < 8; ++i)
        doAccess(m, 0, kLine + i * stride, true);
    m.eq().run();

    auto *home = static_cast<ComaHome *>(m.home(0));
    EXPECT_GE(home->injectionsStarted(), 1u);
    // The first line must still be readable with its data intact.
    auto t = doAccess(m, 1, kLine, false);
    EXPECT_TRUE(t.done);
    m.checkInvariants();
}

TEST(ComaProtocol, WriteInvalidatesAllCopies)
{
    Machine m(smallCfg(ArchKind::Coma, 4, 0));
    doAccess(m, 0, kLine, false);
    doAccess(m, 1, kLine, false);
    doAccess(m, 2, kLine, false);
    doAccess(m, 3, kLine, true);
    for (NodeId n = 0; n < 3; ++n) {
        auto *am = static_cast<CachedMemCompute *>(m.compute(n));
        EXPECT_EQ(am->peekState(kLine), CohState::Invalid) << n;
    }
    auto *am3 = static_cast<CachedMemCompute *>(m.compute(3));
    EXPECT_EQ(am3->peekState(kLine), CohState::Dirty);
    m.checkInvariants();
}

TEST(AggProtocol, SimpleReadsDoNotBlockOrAcknowledge)
{
    // A home-served read involves no third party: the home unblocks
    // immediately and the requester sends no TxnDone. Message economy:
    // exactly ReadReq + ReadReply cross the mesh.
    Machine m(smallCfg(ArchKind::Agg, 2, 1));
    doAccess(m, 0, kLine, false);
    const auto after_first = m.messagesSent();
    EXPECT_EQ(after_first, 2u);

    // A second reader: again two messages, and the home was never
    // left blocked in between (the access would deadlock otherwise).
    doAccess(m, 1, kLine, false);
    EXPECT_EQ(m.messagesSent(), after_first + 2);
}

TEST(AggProtocol, ForwardedTransactionsDoAcknowledge)
{
    // A 3-hop read must close with the requester's TxnDone: ReadReq,
    // Fwd, FwdReply, OwnerToHome (sharing wb), WriteBackAck-free, and
    // the TxnDone — at least five mesh messages beyond the write's.
    Machine m(smallCfg(ArchKind::Agg, 2, 1));
    doAccess(m, 0, kLine, true);
    const auto after_write = m.messagesSent();
    doAccess(m, 1, kLine, false);
    m.eq().run();
    EXPECT_GE(m.messagesSent(), after_write + 5);

    // The home line must be unblocked again (a follow-up request
    // completes rather than queueing forever).
    doAccess(m, 0, kLine, true);
    m.checkInvariants();
}

// ------------------------------------------------------------- common

class EveryArch : public ::testing::TestWithParam<ArchKind>
{
};

TEST_P(EveryArch, ReadAfterRemoteWriteSeesLatestVersion)
{
    const ArchKind arch = GetParam();
    const int d = arch == ArchKind::Agg ? 2 : 0;
    Machine m(smallCfg(arch, 4, d));
    // Ping-pong writes then a read from a fourth node; the version
    // check inside finishAccess() panics on staleness.
    for (int round = 0; round < 4; ++round) {
        doAccess(m, round % 3, kLine, true);
        doAccess(m, 3, kLine, false);
    }
    m.checkInvariants();
}

TEST_P(EveryArch, ManyLinesManyNodes)
{
    const ArchKind arch = GetParam();
    const int d = arch == ArchKind::Agg ? 2 : 0;
    Machine m(smallCfg(arch, 4, d));
    for (int i = 0; i < 32; ++i) {
        const Addr a = kLine + i * 128;
        doAccess(m, i % 4, a, true);
        doAccess(m, (i + 1) % 4, a, false);
        doAccess(m, (i + 2) % 4, a, false);
    }
    m.checkInvariants();
}

INSTANTIATE_TEST_SUITE_P(Protocols, EveryArch,
                         ::testing::Values(ArchKind::Agg,
                                           ArchKind::Numa,
                                           ArchKind::Coma),
                         [](const auto &info) {
                             return archName(info.param);
                         });

} // namespace
} // namespace pimdsm
