/**
 * @file
 * Tests for the declarative protocol spec and its static analyzer:
 * clean runs over all three machine organizations, deliberate spec
 * mutations caught with the right diagnostic kind, derived message
 * metadata agreeing with the spec, and deterministic rendering.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "proto/message.hh"
#include "proto/spec.hh"
#include "proto/spec_check.hh"
#include "sim/config.hh"

using namespace pimdsm;
using spec::CheckReport;
using spec::CostKey;
using spec::LineState;
using spec::ProtocolSpec;
using spec::Role;
using spec::Violation;

namespace
{

CheckReport
checkArch(const ProtocolSpec &p, ArchKind arch)
{
    return spec::checkSpec(p, ProtocolSpec::rolesOfArch(arch),
                           makeBaseConfig(arch));
}

bool
hasDetail(const CheckReport &rep, Violation::Kind kind,
          const std::string &needle)
{
    for (const Violation &v : rep.violations) {
        if (v.kind == kind &&
            (v.where + " " + v.detail).find(needle) !=
                std::string::npos)
            return true;
    }
    return false;
}

} // namespace

// ---------------------------------------------------------------------
// Clean runs.
// ---------------------------------------------------------------------

TEST(Protocheck, CleanAgg)
{
    const CheckReport rep =
        checkArch(ProtocolSpec::instance(), ArchKind::Agg);
    EXPECT_TRUE(rep.ok()) << rep.toString();
}

TEST(Protocheck, CleanComa)
{
    const CheckReport rep =
        checkArch(ProtocolSpec::instance(), ArchKind::Coma);
    EXPECT_TRUE(rep.ok()) << rep.toString();
}

TEST(Protocheck, CleanNuma)
{
    const CheckReport rep =
        checkArch(ProtocolSpec::instance(), ArchKind::Numa);
    EXPECT_TRUE(rep.ok()) << rep.toString();
}

TEST(Protocheck, CleanAllRolesTogether)
{
    static const std::vector<Role> all = {
        Role::AggCompute, Role::ComaCompute, Role::NumaCompute,
        Role::AggHome,    Role::ComaHome,    Role::NumaHome};
    const CheckReport rep = spec::checkSpec(
        ProtocolSpec::instance(), all, makeBaseConfig(ArchKind::Agg));
    EXPECT_TRUE(rep.ok()) << rep.toString();
}

// ---------------------------------------------------------------------
// Mutation 1: drop a transition -> coverage failure.
// ---------------------------------------------------------------------

TEST(Protocheck, DroppedTransitionFailsCoverage)
{
    ProtocolSpec p = ProtocolSpec::build();
    ASSERT_TRUE(p.remove(Role::AggHome, LineState::HomeDirty,
                         MsgType::WriteBack));
    const CheckReport rep = checkArch(p, ArchKind::Agg);
    EXPECT_FALSE(rep.ok());
    EXPECT_TRUE(hasDetail(rep, Violation::Kind::Coverage,
                          "AggHome HomeDirty x WriteBack"))
        << rep.toString();
    // The other organizations are untouched.
    EXPECT_TRUE(checkArch(p, ArchKind::Numa).ok());
    EXPECT_TRUE(checkArch(p, ArchKind::Coma).ok());
}

// ---------------------------------------------------------------------
// Mutation 2: a reply handler that sends a request -> class cycle.
// ---------------------------------------------------------------------

TEST(Protocheck, ReplySendingRequestFailsClassCycle)
{
    ProtocolSpec p = ProtocolSpec::build();
    spec::Transition *t =
        p.find(Role::AggCompute, LineState::Invalid, MsgType::ReadReply);
    ASSERT_NE(t, nullptr);
    t->send(MsgType::ReadReq, Role::AggHome);
    const CheckReport rep = checkArch(p, ArchKind::Agg);
    EXPECT_FALSE(rep.ok());
    EXPECT_TRUE(rep.has(Violation::Kind::ClassCycle))
        << rep.toString();
    // The witness names the offending edge.
    EXPECT_TRUE(hasDetail(rep, Violation::Kind::ClassCycle, "Response"))
        << rep.toString();
    EXPECT_TRUE(hasDetail(rep, Violation::Kind::ClassCycle, "Request"))
        << rep.toString();
}

// ---------------------------------------------------------------------
// Mutation 3: an unknown cost key -> cost failure.
// ---------------------------------------------------------------------

TEST(Protocheck, UnknownCostKeyFailsCostCheck)
{
    ProtocolSpec p = ProtocolSpec::build();
    spec::Transition *t = p.find(Role::NumaHome,
                                 LineState::HomeUncached,
                                 MsgType::ReadReq);
    ASSERT_NE(t, nullptr);
    t->cost = static_cast<CostKey>(200);
    const CheckReport rep = checkArch(p, ArchKind::Numa);
    EXPECT_FALSE(rep.ok());
    EXPECT_TRUE(hasDetail(rep, Violation::Kind::Cost,
                          "unknown cost key"))
        << rep.toString();
    EXPECT_TRUE(hasDetail(rep, Violation::Kind::Cost,
                          "NumaHome HomeUncached x ReadReq"))
        << rep.toString();
}

// A Handled row with no cost key at all is also a cost violation.
TEST(Protocheck, MissingCostKeyFailsCostCheck)
{
    ProtocolSpec p = ProtocolSpec::build();
    spec::Transition *t = p.find(Role::AggHome, LineState::HomeShared,
                                 MsgType::ReadExReq);
    ASSERT_NE(t, nullptr);
    t->cost = CostKey::None;
    const CheckReport rep = checkArch(p, ArchKind::Agg);
    EXPECT_TRUE(hasDetail(rep, Violation::Kind::Cost,
                          "without a cost key"))
        << rep.toString();
}

// ---------------------------------------------------------------------
// Further mutations: sink, reachability, routing, duplicates.
// ---------------------------------------------------------------------

TEST(Protocheck, SinkThatSendsIsCaught)
{
    ProtocolSpec p = ProtocolSpec::build();
    spec::Transition *t = p.find(Role::AggHome, LineState::HomeShared,
                                 MsgType::OwnerToHome);
    ASSERT_NE(t, nullptr);
    t->send(MsgType::WriteBackAck, Role::AggCompute);
    const CheckReport rep = checkArch(p, ArchKind::Agg);
    EXPECT_TRUE(rep.has(Violation::Kind::SinkViolation))
        << rep.toString();
}

TEST(Protocheck, UnreachableStateIsCaught)
{
    ProtocolSpec p = ProtocolSpec::build();
    // Cut every arc into the compute Dirty state: no write grants.
    for (spec::Transition &t : p.transitions()) {
        if (t.role != Role::NumaCompute)
            continue;
        t.next.erase(std::remove(t.next.begin(), t.next.end(),
                                 LineState::Dirty),
                     t.next.end());
    }
    const CheckReport rep = checkArch(p, ArchKind::Numa);
    EXPECT_TRUE(hasDetail(rep, Violation::Kind::Reachability,
                          "NumaCompute Dirty"))
        << rep.toString();
}

TEST(Protocheck, AmbiguousRoutingIsCaught)
{
    ProtocolSpec p = ProtocolSpec::build();
    // Accept a compute-bound message at a home role too.
    p.on(Role::AggHome, LineState::HomeShared, MsgType::ReadReply)
        .withCost(CostKey::Ack);
    const CheckReport rep = checkArch(p, ArchKind::Agg);
    EXPECT_TRUE(hasDetail(rep, Violation::Kind::Routing, "ReadReply"))
        << rep.toString();
}

TEST(Protocheck, DuplicateRowIsCaught)
{
    ProtocolSpec p = ProtocolSpec::build();
    p.on(Role::AggCompute, LineState::Invalid, MsgType::ReadReply)
        .withCost(CostKey::MsgEngine)
        .to(LineState::Shared);
    const CheckReport rep = checkArch(p, ArchKind::Agg);
    EXPECT_TRUE(hasDetail(rep, Violation::Kind::Duplicate,
                          "AggCompute Invalid x ReadReply"))
        << rep.toString();
}

// ---------------------------------------------------------------------
// Derived metadata: the spec reproduces the historical hand-written
// switches exactly (message.cc now delegates here).
// ---------------------------------------------------------------------

TEST(Protocheck, DerivedBoundForHomeMatchesSpec)
{
    const ProtocolSpec &p = ProtocolSpec::instance();
    for (int i = 0; i < kNumMsgTypes; ++i) {
        const auto t = static_cast<MsgType>(i);
        EXPECT_EQ(msgBoundForHome(t), p.boundForHome(t))
            << msgTypeName(t);
    }
    // Spot-check the routing split.
    EXPECT_TRUE(msgBoundForHome(MsgType::ReadReq));
    EXPECT_TRUE(msgBoundForHome(MsgType::OwnerToHome));
    EXPECT_TRUE(msgBoundForHome(MsgType::InjectNack));
    EXPECT_FALSE(msgBoundForHome(MsgType::ReadReply));
    EXPECT_FALSE(msgBoundForHome(MsgType::Inject));
    EXPECT_FALSE(msgBoundForHome(MsgType::CimReply));
}

TEST(Protocheck, DerivedClassOfMatchesSpec)
{
    const ProtocolSpec &p = ProtocolSpec::instance();
    for (int i = 0; i < kNumMsgTypes; ++i) {
        const auto t = static_cast<MsgType>(i);
        EXPECT_EQ(msgClassOf(t), p.classOf(t)) << msgTypeName(t);
        EXPECT_NE(msgClassOf(t), MsgClass::Immune) << msgTypeName(t);
    }
}

// ---------------------------------------------------------------------
// Rendering: deterministic, and stable under re-rendering.
// ---------------------------------------------------------------------

TEST(Protocheck, RenderingIsDeterministic)
{
    const ProtocolSpec &p = ProtocolSpec::instance();
    const MachineConfig cfg = makeBaseConfig(ArchKind::Agg);
    const std::string md1 = spec::renderMarkdown(p, cfg);
    const std::string md2 = spec::renderMarkdown(p, cfg);
    EXPECT_EQ(md1, md2);
    EXPECT_NE(md1.find("Generated by pimdsm-protocheck"),
              std::string::npos);
    EXPECT_NE(md1.find("## AggHome"), std::string::npos);

    static const std::vector<Role> all = {
        Role::AggCompute, Role::ComaCompute, Role::NumaCompute,
        Role::AggHome,    Role::ComaHome,    Role::NumaHome};
    const std::string dot1 = spec::renderDot(p, all);
    const std::string dot2 = spec::renderDot(p, all);
    EXPECT_EQ(dot1, dot2);
    EXPECT_NE(dot1.find("digraph protocol"), std::string::npos);
    // A rebuilt copy renders identically to the singleton.
    const ProtocolSpec copy = ProtocolSpec::build();
    EXPECT_EQ(spec::renderMarkdown(copy, cfg), md1);
    EXPECT_EQ(spec::renderDot(copy, all), dot1);
}

TEST(Protocheck, MessageToStringCarriesRetryContext)
{
    Message m;
    m.type = MsgType::ReadExReply;
    m.lineAddr = 0x1000;
    m.txnSeq = 42;
    m.needsTxnDone = true;
    m.grantsMaster = true;
    const std::string s = m.toString();
    EXPECT_NE(s.find("seq=42"), std::string::npos) << s;
    EXPECT_NE(s.find("+txndone"), std::string::npos) << s;
    EXPECT_NE(s.find("+master"), std::string::npos) << s;
}
