/**
 * @file
 * Write buffer unit tests: background draining, per-line coalescing,
 * capacity accounting, flush semantics, misuse detection.
 */

#include <gtest/gtest.h>

#include "core/write_buffer.hh"
#include "sim/log.hh"
#include "machine/machine.hh"

namespace pimdsm
{
namespace
{

struct Rig
{
    Machine m;

    Rig()
        : m([] {
              MachineConfig cfg = makeBaseConfig(ArchKind::Agg);
              cfg.numPNodes = 1;
              cfg.numThreads = 1;
              cfg.numDNodes = 1;
              cfg.pNodeMemBytes = 256 * 1024;
              cfg.dNodeMemBytes = 256 * 1024;
              cfg.l1 = CacheParams{1024, 1, 64, 3};
              cfg.l2 = CacheParams{4096, 1, 64, 6};
              fitMesh(cfg.net, cfg.totalNodes());
              return cfg;
          }())
    {
    }

    ProcParams params() const { return m.config().proc; }
};

TEST(WriteBufferTest, DrainsInBackground)
{
    Rig rig;
    WriteBuffer wb(*rig.m.compute(0), rig.params());
    EXPECT_TRUE(wb.empty());
    wb.push(1 << 20);
    EXPECT_FALSE(wb.empty());
    rig.m.eq().run();
    EXPECT_TRUE(wb.empty());
    EXPECT_EQ(wb.storesRetired(), 1u);
}

TEST(WriteBufferTest, CoalescesQueuedSameLineStores)
{
    Rig rig;
    WriteBuffer wb(*rig.m.compute(0), rig.params());
    // Saturate the in-flight window with distinct lines first.
    const int inflight = rig.params().maxOutstanding -
                         rig.params().maxOutstandingLoads;
    for (int i = 0; i < inflight + 2; ++i)
        wb.push((1 << 20) + (i + 1) * 4096);
    // Now duplicates of one queued line coalesce.
    const Addr hot = (1 << 20) + 4096 * (inflight + 2);
    wb.push(hot);
    wb.push(hot + 8);
    wb.push(hot + 16);
    EXPECT_GE(wb.coalesced(), 2u);
    rig.m.eq().run();
    EXPECT_TRUE(wb.empty());
}

TEST(WriteBufferTest, FullAndSpaceCallback)
{
    Rig rig;
    WriteBuffer wb(*rig.m.compute(0), rig.params());
    int space_events = 0;
    wb.setSpaceCallback([&] { ++space_events; });

    int pushed = 0;
    while (!wb.full()) {
        wb.push((1 << 20) + pushed * 4096);
        ++pushed;
    }
    EXPECT_EQ(pushed, rig.params().writeBufferEntries);
    EXPECT_THROW(wb.push(1 << 24), PanicError);

    rig.m.eq().run();
    EXPECT_TRUE(wb.empty());
    EXPECT_GT(space_events, 0);
}

TEST(WriteBufferTest, FlushFiresWhenEmpty)
{
    Rig rig;
    WriteBuffer wb(*rig.m.compute(0), rig.params());
    bool flushed = false;
    wb.flush([&] { flushed = true; });
    EXPECT_TRUE(flushed); // already empty: immediate

    flushed = false;
    wb.push(1 << 20);
    wb.push((1 << 20) + 4096);
    wb.flush([&] { flushed = true; });
    EXPECT_FALSE(flushed);
    EXPECT_THROW(wb.flush([] {}), PanicError); // one flush at a time
    rig.m.eq().run();
    EXPECT_TRUE(flushed);
}

TEST(WriteBufferTest, ManyStoresAllRetire)
{
    Rig rig;
    WriteBuffer wb(*rig.m.compute(0), rig.params());
    int accepted = 0;
    for (int i = 0; i < 500; ++i) {
        if (wb.full())
            rig.m.eq().run(); // let it drain
        wb.push((1 << 20) + i * 4096);
        ++accepted;
    }
    rig.m.eq().run();
    EXPECT_TRUE(wb.empty());
    EXPECT_EQ(wb.storesRetired() + wb.coalesced(),
              static_cast<std::uint64_t>(accepted));
}

} // namespace
} // namespace pimdsm
