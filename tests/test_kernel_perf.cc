/**
 * @file
 * Kernel-overhaul regression tests: calendar queue vs. reference heap
 * differential execution, event-node and message pool hygiene, flat
 * hot-path maps, InlineCallback semantics, and whole-machine
 * determinism across kernels.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "machine/builder.hh"
#include "machine/machine.hh"
#include "report/experiment.hh"
#include "sim/event_queue.hh"
#include "sim/flat_map.hh"
#include "sim/inline_callback.hh"
#include "sim/pool.hh"
#include "sim/random.hh"
#include "workload/apps.hh"

namespace pimdsm
{
namespace
{

// ---------------------------------------------------------------------
// Differential: the calendar queue must execute an adversarial mix of
// near/far/same-tick schedules in exactly the reference heap's order.
// ---------------------------------------------------------------------

/** One kernel's execution trace for a scripted random schedule. */
std::vector<std::uint64_t>
traceKernel(EventQueue::KernelKind kind, std::uint64_t n_events,
            std::uint64_t seed)
{
    EventQueue eq(kind);
    Rng rng(seed);
    std::vector<std::uint64_t> trace;
    trace.reserve(n_events);
    std::uint64_t scheduled = 0;
    std::uint64_t id = 0;

    auto delay = [&rng]() -> Tick {
        const std::uint64_t r = rng.nextBounded(1000);
        if (r < 300)
            return 0; // same tick: FIFO order must hold
        if (r < 800)
            return 1 + rng.nextBounded(16);
        if (r < 950)
            return 20 + rng.nextBounded(500);
        if (r < 995)
            return 1000 + rng.nextBounded(30000); // beyond the ring
        return 100000 + rng.nextBounded(1000000); // deep overflow
    };

    // Each event logs its id and schedules 0-2 successors, so the
    // schedule itself depends on execution order: any divergence
    // cascades instead of hiding.
    std::function<void(std::uint64_t)> fire =
        [&](std::uint64_t my_id) {
            trace.push_back(my_id);
            const std::uint64_t kids = rng.nextBounded(3);
            for (std::uint64_t k = 0; k < kids; ++k) {
                if (scheduled >= n_events)
                    break;
                ++scheduled;
                const std::uint64_t kid_id = id++;
                eq.scheduleIn(delay(),
                              [&fire, kid_id] { fire(kid_id); });
            }
        };

    for (std::uint64_t i = 0; i < 64 && scheduled < n_events; ++i) {
        ++scheduled;
        const std::uint64_t seed_id = id++;
        eq.schedule(rng.nextBounded(2000),
                    [&fire, seed_id] { fire(seed_id); });
    }
    eq.run();
    return trace;
}

TEST(CalendarQueue, MatchesReferenceHeapOnAMillionMixedEvents)
{
    const std::uint64_t n = 1'000'000;
    const auto ref =
        traceKernel(EventQueue::KernelKind::ReferenceHeap, n, 0xd1ffull);
    const auto cal =
        traceKernel(EventQueue::KernelKind::Calendar, n, 0xd1ffull);
    ASSERT_EQ(ref.size(), cal.size());
    // EXPECT_EQ on the vectors would print a million elements on
    // failure; find the first divergence instead.
    for (std::size_t i = 0; i < ref.size(); ++i) {
        ASSERT_EQ(ref[i], cal[i]) << "first divergence at event " << i;
    }
}

TEST(CalendarQueue, MatchesReferenceAcrossSeeds)
{
    for (std::uint64_t seed : {1ull, 42ull, 0xabcdefull}) {
        const auto ref = traceKernel(
            EventQueue::KernelKind::ReferenceHeap, 50'000, seed);
        const auto cal =
            traceKernel(EventQueue::KernelKind::Calendar, 50'000, seed);
        EXPECT_EQ(ref, cal) << "seed " << seed;
    }
}

TEST(CalendarQueue, RunUntilThenBackfillBeforeTheWindowBase)
{
    // Regression: after runUntil stops short of a far-future event the
    // ring base can sit ahead of curTick; a new event scheduled below
    // the base must still run before the far one.
    EventQueue eq(EventQueue::KernelKind::Calendar);
    std::vector<int> order;
    eq.schedule(1'000'000, [&] { order.push_back(2); });
    eq.runUntil(500);
    eq.schedule(600, [&] { order.push_back(1); });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2}));
    EXPECT_EQ(eq.curTick(), 1'000'000u);
}

// ---------------------------------------------------------------------
// Pools.
// ---------------------------------------------------------------------

TEST(EventPool, ReusesNodesInsteadOfGrowing)
{
    EventQueue eq(EventQueue::KernelKind::Calendar);
    // Cycle far more events than ever live at once: capacity must
    // track the high-water mark, not the total event count.
    for (int round = 0; round < 1000; ++round) {
        for (int i = 0; i < 8; ++i)
            eq.scheduleIn(1 + i, [] {});
        eq.run();
    }
    EXPECT_EQ(eq.executed(), 8000u);
    EXPECT_LE(eq.poolCapacity(), 512u);
    // Queue drained: every node is back on the free list.
    EXPECT_EQ(eq.poolFree(), eq.poolCapacity());
}

TEST(MessagePool, DrainsAfterRealTransactions)
{
    auto wl = makeWorkload("fft", 1);
    BuildSpec spec;
    spec.arch = ArchKind::Agg;
    spec.threads = 4;
    spec.pressure = 0.25;
    MachineConfig cfg = buildConfig(*wl, spec);
    Machine m(cfg);
    EXPECT_EQ(m.messagePool().live(), 0u);

    // Real protocol traffic: reads and writes from several nodes to
    // shared lines, drained to quiescence.
    int completed = 0;
    for (int i = 0; i < 64; ++i) {
        const Addr a = 0x100000 + 64 * (i % 8);
        m.compute(i % 4)->access(a, (i % 3) == 0,
                                 [&](Tick, ReadService) {
                                     ++completed;
                                 });
        m.eq().runUntil(m.eq().curTick() + 5);
    }
    m.eq().run();
    EXPECT_EQ(completed, 64);
    EXPECT_GT(m.messagesSent(), 0u);
    // Quiescent: every message slot must be back on the free list.
    EXPECT_EQ(m.messagePool().live(), 0u);
    EXPECT_EQ(m.messagePool().freeSlots(), m.messagePool().capacity());
}

TEST(MessagePool, RefcountedHandlesRecycleSlots)
{
    RefPool<int> pool;
    auto a = pool.make(7);
    EXPECT_EQ(pool.live(), 1u);
    {
        auto b = a; // shared slot
        EXPECT_EQ(pool.live(), 1u);
        EXPECT_EQ(b.get(), 7);
    }
    EXPECT_EQ(pool.live(), 1u); // copy released, original holds on
    const std::size_t cap = pool.capacity();
    a = {};
    EXPECT_EQ(pool.live(), 0u);
    // Recycled, not grown.
    auto c = pool.make(9);
    EXPECT_EQ(pool.capacity(), cap);
    EXPECT_EQ(c.get(), 9);
}

// ---------------------------------------------------------------------
// InlineCallback.
// ---------------------------------------------------------------------

TEST(InlineCallback, SmallLambdasStayInline)
{
    int x = 0;
    InlineCallback cb([&x] { ++x; });
    EXPECT_TRUE(cb.storedInline());
    cb();
    EXPECT_EQ(x, 1);
}

TEST(InlineCallback, OversizedLambdasFallBackToHeap)
{
    struct Big
    {
        char pad[256] = {};
    };
    Big big;
    int hits = 0;
    InlineCallback cb([big, &hits] { hits += sizeof(big) ? 1 : 0; });
    EXPECT_FALSE(cb.storedInline());
    InlineCallback copy = cb; // heap fallback stays copyable
    cb();
    copy();
    EXPECT_EQ(hits, 2);
}

TEST(InlineCallback, CopyableCapturesSurviveDuplication)
{
    // The mesh duplicates delivery closures under fault injection;
    // copying must deep-preserve the captured state.
    auto shared = std::make_shared<int>(0);
    InlineCallback cb([shared] { ++*shared; });
    InlineCallback dup = cb;
    cb();
    dup();
    EXPECT_EQ(*shared, 2);
}

// ---------------------------------------------------------------------
// FlatMap.
// ---------------------------------------------------------------------

TEST(FlatMap, InsertFindEraseAgainstReference)
{
    FlatMap<std::uint64_t, int> fm;
    std::map<std::uint64_t, int> ref;
    Rng rng(7);
    for (int i = 0; i < 20000; ++i) {
        const std::uint64_t key = rng.nextBounded(4096) << 6;
        switch (rng.nextBounded(3)) {
        case 0:
            fm[key] = i;
            ref[key] = i;
            break;
        case 1:
            EXPECT_EQ(fm.erase(key), ref.erase(key));
            break;
        default: {
            auto it = fm.find(key);
            auto rit = ref.find(key);
            ASSERT_EQ(it == fm.end(), rit == ref.end());
            if (it != fm.end()) {
                EXPECT_EQ(it->second, rit->second);
            }
        }
        }
    }
    EXPECT_EQ(fm.size(), ref.size());
    for (const auto &[k, v] : ref) {
        auto it = fm.find(k);
        ASSERT_NE(it, fm.end());
        EXPECT_EQ(it->second, v);
    }
}

TEST(FlatMap, PairKeysWork)
{
    FlatMap<std::pair<Addr, NodeId>, int> fm;
    fm[{0x40, 3}] = 1;
    fm[{0x40, 4}] = 2;
    fm[{0x80, 3}] = 3;
    EXPECT_EQ(fm.size(), 3u);
    EXPECT_EQ((fm[{0x40, 4}]), 2);
    EXPECT_EQ((fm.erase({0x40, 3})), 1u);
    EXPECT_EQ((fm.find({0x40, 3})), fm.end());
    EXPECT_EQ((fm[{0x80, 3}]), 3);
}

// ---------------------------------------------------------------------
// Whole-machine determinism: a full experiment must produce identical
// stats under either kernel.
// ---------------------------------------------------------------------

RunResult
runFig6Point(EventQueue::KernelKind kind)
{
    EventQueue::setDefaultKind(kind);
    auto wl = makeWorkload("fft", 1);
    BuildSpec spec;
    spec.arch = ArchKind::Agg;
    spec.threads = 8;
    spec.pressure = 0.25;
    spec.dRatio = 2;
    RunResult r = runWorkload(*wl, spec);
    EventQueue::setDefaultKind(EventQueue::KernelKind::Calendar);
    return r;
}

TEST(KernelDeterminism, Fig6StatsIdenticalAcrossKernels)
{
    const RunResult heap =
        runFig6Point(EventQueue::KernelKind::ReferenceHeap);
    const RunResult cal = runFig6Point(EventQueue::KernelKind::Calendar);

    EXPECT_EQ(heap.totalTicks, cal.totalTicks);
    EXPECT_EQ(heap.messages, cal.messages);
    EXPECT_EQ(heap.instructions, cal.instructions);
    EXPECT_EQ(heap.time.total(), cal.time.total());
    for (int i = 0; i < ReadLatencyStats::kNum; ++i) {
        EXPECT_EQ(heap.reads.count[i], cal.reads.count[i]) << i;
        EXPECT_EQ(heap.reads.totalLatency[i], cal.reads.totalLatency[i])
            << i;
    }
    // Every named counter, bitwise.
    ASSERT_EQ(heap.counters.size(), cal.counters.size());
    for (const auto &[name, value] : heap.counters) {
        const auto it = cal.counters.find(name);
        ASSERT_NE(it, cal.counters.end()) << name;
        EXPECT_EQ(value, it->second) << name;
    }
}

} // namespace
} // namespace pimdsm
