/**
 * @file
 * Coherence-oracle self-tests: each deliberate protocol mutation
 * (sim/config.hh ProtoMutation) breaks one invariant in a targeted
 * way, and the oracle or the quiescent scan must catch it. The same
 * scenarios must run clean with the mutation disabled — the detectors
 * fire on the bug, not on the workload.
 */

#include <gtest/gtest.h>

#include "machine/machine.hh"
#include "sim/log.hh"

namespace pimdsm
{
namespace
{

constexpr Addr kLine = 1ull << 20;

MachineConfig
checkedCfg(ProtoMutation mutation)
{
    MachineConfig cfg = makeBaseConfig(ArchKind::Agg);
    cfg.numPNodes = 2;
    cfg.numThreads = 2;
    cfg.numDNodes = 1;
    cfg.pNodeMemBytes = 64 * 1024;
    cfg.dNodeMemBytes = 64 * 1024;
    cfg.l1 = CacheParams{1024, 1, 64, 3};
    cfg.l2 = CacheParams{4096, 1, 64, 6};
    cfg.check.enabled = true;
    cfg.check.mutation = mutation;
    fitMesh(cfg.net, cfg.totalNodes());
    cfg.validate();
    return cfg;
}

void
doAccess(Machine &m, NodeId n, Addr a, bool write)
{
    bool done = false;
    m.compute(n)->access(a, write, [&](Tick, ReadService) {
        done = true;
    });
    m.eq().run();
    ASSERT_TRUE(done);
}

// A reader keeps its copy through an invalidation (it still acks, so
// the writer completes). The AGG cold read granted it mastership, so
// the stale survivor is owner-ish and the oracle's continuous SWMR
// check fires the moment the writer installs Dirty.
TEST(OracleMutation, SkipInvalCaughtBySwmr)
{
    Machine m(checkedCfg(ProtoMutation::SkipInval));
    doAccess(m, 0, kLine, false);
    m.compute(1)->access(kLine, true, [](Tick, ReadService) {});
    EXPECT_THROW(m.eq().run(), PanicError);
    EXPECT_GT(m.stats().get("check.mutation.skip_inval"), 0.0);
}

TEST(OracleMutation, SkipInvalScenarioCleanWhenDisabled)
{
    Machine m(checkedCfg(ProtoMutation::None));
    doAccess(m, 0, kLine, false);
    doAccess(m, 1, kLine, true);
    m.checkCoherenceQuiescent();
}

// The home forgets a dirty owner and serves a second write as if the
// line were uncached: two nodes install Dirty, and the oracle's
// continuous SWMR check fires the moment the second owner installs.
TEST(OracleMutation, DoubleOwnerCaughtBySwmrMidRun)
{
    Machine m(checkedCfg(ProtoMutation::DoubleOwner));
    doAccess(m, 0, kLine, true);
    bool done = false;
    m.compute(1)->access(kLine, true, [&](Tick, ReadService) {
        done = true;
    });
    EXPECT_THROW(m.eq().run(), PanicError);
    EXPECT_GT(m.stats().get("check.mutation.double_owner"), 0.0);
}

TEST(OracleMutation, DoubleOwnerScenarioCleanWhenDisabled)
{
    Machine m(checkedCfg(ProtoMutation::None));
    doAccess(m, 0, kLine, true);
    doAccess(m, 1, kLine, true);
    m.checkCoherenceQuiescent();
}

// The D-node "forgets" to return a Data slot to the FreeList when a
// write grant releases the home copy: the slot-conservation scan sees
// more slots in use than directory entries referencing them.
void
runLeakSlotScenario(Machine &m)
{
    doAccess(m, 1, kLine, false); // home absorbs a copy into a slot
    doAccess(m, 0, kLine, true);  // grant releases (and leaks) it
}

TEST(OracleMutation, LeakSlotCaughtBySlotConservation)
{
    Machine m(checkedCfg(ProtoMutation::LeakSlot));
    runLeakSlotScenario(m);
    EXPECT_GT(m.stats().get("check.mutation.leak_slot"), 0.0);
    EXPECT_THROW(m.checkInvariants(), PanicError);
}

TEST(OracleMutation, LeakSlotScenarioCleanWhenDisabled)
{
    Machine m(checkedCfg(ProtoMutation::None));
    runLeakSlotScenario(m);
    m.checkInvariants();
    m.checkCoherenceQuiescent();
}

} // namespace
} // namespace pimdsm
