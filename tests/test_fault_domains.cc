/**
 * @file
 * Structural fault domains (PR "chaos" layer): config validation for
 * link deaths, timed partitions and P-node deaths; detour routing and
 * delivery semantics around dead links; partition queueing/drain on
 * heal; duplicate Acks across a heal; P-node failover salvage; and the
 * structured watchdog report.
 */

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "machine/builder.hh"
#include "machine/machine.hh"
#include "machine/reconfig.hh"
#include "net/mesh.hh"
#include "proto/compute_base.hh"
#include "proto/stuck.hh"
#include "report/experiment.hh"
#include "sim/log.hh"
#include "workload/workload.hh"

namespace pimdsm
{
namespace
{

NetParams
testNet()
{
    NetParams p;
    p.meshX = 4;
    p.meshY = 4;
    p.linkBytesPerTick = 2;
    p.routerLatency = 4;
    p.wireLatency = 1;
    p.niLatency = 8;
    p.headerBytes = 16;
    return p;
}

// ---------------------------------------------------------- validation

TEST(FaultDomainConfig, NeverHealingPartitionIsRejected)
{
    FaultConfig fc;
    fc.partitions.push_back(Partition{1000, 0, {LinkRef{0, 0, 0}}});
    EXPECT_THROW(fc.validate(), FatalError);
}

TEST(FaultDomainConfig, HealBeforeCutIsRejected)
{
    FaultConfig fc;
    fc.partitions.push_back(Partition{1000, 900, {LinkRef{0, 0, 0}}});
    EXPECT_THROW(fc.validate(), FatalError);
}

TEST(FaultDomainConfig, EmptyCutIsRejected)
{
    FaultConfig fc;
    fc.partitions.push_back(Partition{1000, 2000, {}});
    EXPECT_THROW(fc.validate(), FatalError);
}

TEST(FaultDomainConfig, HealedPartitionPasses)
{
    FaultConfig fc;
    fc.partitions.push_back(
        Partition{1000, 2000, {LinkRef{0, 0, 0}}});
    EXPECT_NO_THROW(fc.validate());
    EXPECT_TRUE(fc.enabled());
}

TEST(FaultDomainConfig, BadLinkDirectionIsRejected)
{
    FaultConfig fc;
    fc.linkDeaths.push_back(LinkDeath{1000, 0, 0, 4});
    EXPECT_THROW(fc.validate(), FatalError);
}

TEST(FaultDomainConfig, OffMeshLinkDeathIsRejectedByTopology)
{
    FaultConfig fc;
    // East off the right edge of a 4-wide mesh.
    fc.linkDeaths.push_back(LinkDeath{1000, 3, 0, 0});
    EXPECT_NO_THROW(fc.validate());
    EXPECT_THROW(fc.validateTopology(4, 4, 4), FatalError);
    // Same link is fine on a wider mesh.
    EXPECT_NO_THROW(fc.validateTopology(5, 4, 4));
}

TEST(FaultDomainConfig, OffMeshPartitionCutIsRejectedByTopology)
{
    FaultConfig fc;
    fc.partitions.push_back(
        Partition{1000, 2000, {LinkRef{0, 0, 1}}}); // West off x=0
    EXPECT_THROW(fc.validateTopology(4, 4, 4), FatalError);
}

TEST(FaultDomainConfig, KillingEveryComputeNodeIsRejected)
{
    FaultConfig fc;
    for (NodeId n = 0; n < 4; ++n)
        fc.pnodeDeaths.push_back(PNodeDeath{1000, n});
    EXPECT_THROW(fc.validateTopology(4, 4, 4), FatalError);
    // Killing all but one is allowed.
    fc.pnodeDeaths.pop_back();
    EXPECT_NO_THROW(fc.validateTopology(4, 4, 4));
}

TEST(FaultDomainConfig, DomainAndActionNamesAreDistinct)
{
    std::set<std::string> domains;
    for (int i = 0; i < kNumFaultDomains; ++i) {
        const char *name =
            faultDomainName(static_cast<FaultDomain>(i));
        ASSERT_NE(name, nullptr);
        EXPECT_STRNE(name, "?") << "unnamed FaultDomain " << i;
        EXPECT_TRUE(domains.insert(name).second);
    }
    std::set<std::string> actions;
    for (int i = 0; i < 4; ++i) {
        const char *name =
            faultActionName(static_cast<FaultAction>(i));
        ASSERT_NE(name, nullptr);
        EXPECT_STRNE(name, "?") << "unnamed FaultAction " << i;
        EXPECT_TRUE(actions.insert(name).second);
    }
}

// ------------------------------------------- link death and detouring

TEST(MeshFaultDomains, LinkDeathKillsBothDirections)
{
    EventQueue eq;
    Mesh mesh(eq, testNet(), 16);
    EXPECT_FALSE(mesh.degraded());
    mesh.setLinkAlive(0, 0, 0, false); // channel (0,0) <-> (1,0)
    EXPECT_TRUE(mesh.degraded());
    EXPECT_EQ(mesh.deadLinkCount(), 2);
    EXPECT_FALSE(mesh.linkAlive(0, 0, 0));
    EXPECT_FALSE(mesh.linkAlive(1, 0, 1)); // reverse direction
}

TEST(MeshFaultDomains, DetourRoutesAroundADeadLink)
{
    EventQueue eq;
    Mesh mesh(eq, testNet(), 16);
    mesh.setLinkAlive(0, 0, 0, false);
    ASSERT_TRUE(mesh.routable(0, 3));
    int delivered = 0;
    mesh.send(0, 3, 64, [&] { ++delivered; });
    eq.run();
    EXPECT_EQ(delivered, 1);
}

TEST(MeshFaultDomains, HealRestoresFaultFreeRouting)
{
    EventQueue eq;
    Mesh mesh(eq, testNet(), 16);
    mesh.setLinkAlive(2, 1, 2, false);
    mesh.setLinkAlive(2, 1, 2, true);
    EXPECT_FALSE(mesh.degraded());
    EXPECT_EQ(mesh.deadLinkCount(), 0);
    int delivered = 0;
    mesh.send(0, 15, 64, [&] { ++delivered; });
    eq.run();
    EXPECT_EQ(delivered, 1);
}

TEST(MeshFaultDomains, LinkDeathMidWormholeDeliversExactlyOnce)
{
    EventQueue eq;
    Mesh mesh(eq, testNet(), 16);
    int delivered = 0;
    // Node 0 -> 3 crosses the (1,0) east link; kill it while the
    // message is in flight. The wormhole already charged its links,
    // so the scheduled delivery stands — exactly one arrival.
    mesh.send(0, 3, 64, [&] { ++delivered; });
    mesh.setLinkAlive(1, 0, 0, false);
    eq.run();
    EXPECT_EQ(delivered, 1);

    // A message sent after the death detours and also arrives once.
    mesh.send(0, 3, 64, [&] { ++delivered; });
    eq.run();
    EXPECT_EQ(delivered, 2);
}

// --------------------------------------------- partitions: block/drain

/** Cut every east link between columns 1 and 2 of the 4x4 mesh. */
void
cutColumn(Mesh &mesh, bool alive)
{
    for (int y = 0; y < 4; ++y)
        mesh.setLinkAlive(1, y, 0, alive);
}

TEST(MeshFaultDomains, PartitionQueuesMessagesAndDrainsOnHeal)
{
    EventQueue eq;
    Mesh mesh(eq, testNet(), 16);
    cutColumn(mesh, false);
    EXPECT_FALSE(mesh.routable(0, 3));
    EXPECT_TRUE(mesh.routable(0, 1)); // same side still fine

    int delivered = 0;
    mesh.send(0, 3, 64, [&] { ++delivered; });
    eq.run();
    EXPECT_EQ(delivered, 0);
    EXPECT_EQ(mesh.partitionBlocked(), 1u);
    EXPECT_EQ(mesh.partitionBlockedTotal(), 1u);

    // Healing a single channel of the cut reconnects the halves and
    // re-injects the queued message.
    mesh.setLinkAlive(1, 2, 0, true);
    EXPECT_EQ(mesh.partitionBlocked(), 0u);
    eq.run();
    EXPECT_EQ(delivered, 1);
}

TEST(MeshFaultDomains, BlockedMessagesSurviveAPartialHeal)
{
    EventQueue eq;
    Mesh mesh(eq, testNet(), 16);
    cutColumn(mesh, false);
    // Also isolate the (3,3) corner entirely (both incident channels)
    // so healing the column cut alone cannot reach node 15 from 0.
    mesh.setLinkAlive(2, 3, 0, false); // (2,3) <-> (3,3)
    mesh.setLinkAlive(3, 2, 2, false); // (3,2) <-> (3,3)

    int delivered = 0;
    mesh.send(0, 15, 64, [&] { ++delivered; });
    EXPECT_EQ(mesh.partitionBlocked(), 1u);

    // Healing the column cut still leaves (3,3) unreachable: the
    // message must stay queued rather than panic mid-walk.
    cutColumn(mesh, true);
    EXPECT_EQ(mesh.partitionBlocked(), 1u);
    eq.run();
    EXPECT_EQ(delivered, 0);

    mesh.setLinkAlive(3, 2, 2, true);
    eq.run();
    EXPECT_EQ(delivered, 1);
}

// ------------------------------------------------- workload-level runs

RunOptions
checkedOpts()
{
    RunOptions opts;
    opts.checkInvariants = true;
    return opts;
}

double
counterOf(const RunResult &r, const std::string &name)
{
    const auto it = r.counters.find(name);
    return it == r.counters.end() ? 0.0 : it->second;
}

TEST(FaultDomainRuns, DupAcksAcrossPartitionHealStayCoherent)
{
    auto wl = makeWorkload("fft", 1);
    BuildSpec spec;
    spec.arch = ArchKind::Agg;
    spec.threads = 4;
    spec.dNodes = 2;
    spec.pressure = 0.25;
    MachineConfig cfg = buildConfig(*wl, spec);
    cfg.check.enabled = true;
    // Every Ack delivered twice, across a timed partition: dedup and
    // the spurious-TxnDone tolerance must absorb replays on both
    // sides of the heal. 6 nodes fit a 3x2 mesh; cut column 1.
    ASSERT_EQ(cfg.net.meshX, 3);
    cfg.faults.rates[static_cast<int>(MsgClass::Ack)].duplicate = 1.0;
    cfg.faults.partitions.push_back(Partition{
        50'000, 150'000, {LinkRef{1, 0, 0}, LinkRef{1, 1, 0}}});
    cfg.validate();

    warnResetForTest();
    const RunResult r = runWorkload(cfg, *wl, checkedOpts());
    warnResetForTest();

    EXPECT_GT(counterOf(r, "fault.net.dup"), 0.0);
    EXPECT_EQ(counterOf(r, "check.violations"), 0.0);
    EXPECT_EQ(static_cast<int>(r.phases.size()), wl->numPhases());
}

TEST(FaultDomainRuns, PartitionCampaignCompletesAfterHeal)
{
    auto wl = makeWorkload("radix", 1);
    BuildSpec spec;
    spec.arch = ArchKind::Agg;
    spec.threads = 4;
    spec.dNodes = 2;
    spec.pressure = 0.25;
    MachineConfig cfg = buildConfig(*wl, spec);
    cfg.check.enabled = true;
    cfg.faults.partitions.push_back(Partition{
        40'000, 240'000, {LinkRef{1, 0, 0}, LinkRef{1, 1, 0}}});
    cfg.validate();

    warnResetForTest();
    const RunResult r = runWorkload(cfg, *wl, checkedOpts());
    warnResetForTest();

    // The cut actually blocked traffic, links died and healed, and
    // the run still finished clean.
    EXPECT_GT(counterOf(r, "fault.net.link_deaths"), 0.0);
    EXPECT_GT(counterOf(r, "fault.net.link_heals"), 0.0);
    EXPECT_EQ(counterOf(r, "check.violations"), 0.0);
    EXPECT_EQ(static_cast<int>(r.phases.size()), wl->numPhases());
}

TEST(FaultDomainRuns, PNodeDeathSalvagesAndCompletes)
{
    auto wl = makeWorkload("fft", 1);
    BuildSpec spec;
    spec.arch = ArchKind::Agg;
    spec.threads = 4;
    spec.dNodes = 2;
    spec.pressure = 0.25;
    MachineConfig cfg = buildConfig(*wl, spec);
    cfg.check.enabled = true;
    cfg.faults.pnodeDeaths.push_back(PNodeDeath{150'000, 1});
    cfg.validate();

    warnResetForTest();
    const RunResult r = runWorkload(cfg, *wl, checkedOpts());
    warnResetForTest();

    EXPECT_EQ(r.pnodeFailovers, 1);
    EXPECT_EQ(counterOf(r, "fault.pnode_failovers"), 1.0);
    EXPECT_EQ(counterOf(r, "check.violations"), 0.0);
    EXPECT_EQ(static_cast<int>(r.phases.size()), wl->numPhases());
}

TEST(FaultDomainRuns, PNodeDeathRunsAreDeterministic)
{
    auto wl = makeWorkload("fft", 1);
    BuildSpec spec;
    spec.arch = ArchKind::Agg;
    spec.threads = 4;
    spec.dNodes = 2;
    spec.pressure = 0.25;
    MachineConfig cfg = buildConfig(*wl, spec);
    cfg.faults.pnodeDeaths.push_back(PNodeDeath{150'000, 2});

    warnResetForTest();
    const RunResult a = runWorkload(cfg, *wl);
    const RunResult b = runWorkload(cfg, *wl);
    warnResetForTest();
    EXPECT_EQ(a.totalTicks, b.totalTicks);
    EXPECT_EQ(a.messages, b.messages);
}

// ------------------------------------------ structured watchdog report

TEST(WatchdogReport, StuckReportFormatsEveryField)
{
    StuckTxn t;
    t.kind = "mshr";
    t.node = 3;
    t.line = 0x150580;
    t.req = MsgType::ReadReq;
    t.seq = 17;
    t.retries = 8;
    t.state = "abandoned";
    t.acksExpected = 2;
    t.acksReceived = 1;
    t.issueTick = 1000;
    t.lastProgressTick = 5000;
    const std::string s = stuckReport({t});
    EXPECT_NE(s.find("node 3"), std::string::npos) << s;
    EXPECT_NE(s.find("0x150580"), std::string::npos) << s;
    EXPECT_NE(s.find("seq=17"), std::string::npos) << s;
    EXPECT_NE(s.find("retries=8"), std::string::npos) << s;
    EXPECT_NE(s.find("abandoned"), std::string::npos) << s;
    EXPECT_NE(s.find("acks=1/2"), std::string::npos) << s;
}

TEST(WatchdogReport, WatchdogErrorIsAStructuredPanic)
{
    StuckTxn t;
    t.node = 1;
    t.line = 0x40;
    t.state = "waiting-reply";
    WatchdogError e("watchdog: stalled", {t}, 4);
    EXPECT_EQ(e.stuck.size(), 1u);
    EXPECT_EQ(e.partitionBlocked, 4u);
    // Existing catch sites treat it as a PanicError.
    try {
        throw WatchdogError("watchdog: stalled", {t}, 0);
    } catch (const PanicError &p) {
        EXPECT_NE(std::string(p.what()).find("watchdog"),
                  std::string::npos);
    }
}

// --------------------------------------------- direct P-node failover

TEST(PNodeFailover, SalvageKeepsTheMachineCoherent)
{
    auto wl = makeWorkload("fft", 1);
    BuildSpec spec;
    spec.arch = ArchKind::Agg;
    spec.threads = 4;
    spec.dNodes = 2;
    spec.pressure = 0.25;
    MachineConfig cfg = buildConfig(*wl, spec);
    cfg.check.enabled = true;
    cfg.faults.armRecovery = true; // arm fault paths, no mesh faults
    Machine m(cfg);

    // Node 1 dirties a line, node 2 shares another.
    bool done = false;
    m.compute(1)->access(0x100000, true,
                         [&](Tick, ReadService) { done = true; });
    m.eq().run();
    ASSERT_TRUE(done);
    done = false;
    m.compute(2)->access(0x200000, false,
                         [&](Tick, ReadService) { done = true; });
    m.eq().run();
    ASSERT_TRUE(done);

    const PNodeFailoverResult fr = failOverPNode(m, 1);
    EXPECT_TRUE(m.isDead(1));
    EXPECT_GE(fr.linesSalvaged, 1u); // the dirty line came back
    m.eq().run(); // drain the failover's engine-cost events
    m.checkInvariants();
    m.checkCoherenceQuiescent();

    // A survivor can read the salvaged line (home has the data).
    done = false;
    m.compute(0)->access(0x100000, false,
                         [&](Tick, ReadService) { done = true; });
    m.eq().run();
    EXPECT_TRUE(done);
    m.checkCoherenceQuiescent();
}

} // namespace
} // namespace pimdsm
