/**
 * @file
 * Tests for the D-node Data/Pointer arrays: FreeList/SharedList FIFO
 * semantics, SharedList reuse, and a randomized integrity property
 * sweep.
 */

#include <gtest/gtest.h>

#include <set>

#include "proto/agg_dnode.hh"
#include "sim/log.hh"
#include "sim/random.hh"

namespace pimdsm
{
namespace
{

TEST(DNodeStore, StartsAllFree)
{
    DNodeStore s(16);
    EXPECT_EQ(s.dataEntries(), 16u);
    EXPECT_EQ(s.freeLen(), 16u);
    EXPECT_EQ(s.sharedLen(), 0u);
    EXPECT_EQ(s.usedSlots(), 0u);
    s.checkIntegrity();
}

TEST(DNodeStore, AllocateFromFreeListFirst)
{
    DNodeStore s(4);
    bool reused;
    Addr dropped;
    const auto slot = s.allocate(0x1000, reused, dropped);
    EXPECT_NE(slot, kNilPtr);
    EXPECT_FALSE(reused);
    EXPECT_EQ(s.freeLen(), 3u);
    EXPECT_EQ(s.slotLine(slot), 0x1000u);
    EXPECT_FALSE(s.inShared(slot));
    EXPECT_FALSE(s.inFree(slot));
    s.checkIntegrity();
}

TEST(DNodeStore, FreeIsFifo)
{
    DNodeStore s(3);
    bool reused;
    Addr dropped;
    const auto a = s.allocate(0xa00, reused, dropped);
    const auto b = s.allocate(0xb00, reused, dropped);
    const auto c = s.allocate(0xc00, reused, dropped);
    s.free(b);
    s.free(a);
    s.free(c);
    // Reallocation order must be b, a, c (FIFO free list).
    EXPECT_EQ(s.allocate(0x100, reused, dropped), b);
    EXPECT_EQ(s.allocate(0x200, reused, dropped), a);
    EXPECT_EQ(s.allocate(0x300, reused, dropped), c);
    s.checkIntegrity();
}

TEST(DNodeStore, SharedListReuseIsFifoAndReportsDropped)
{
    DNodeStore s(2);
    bool reused;
    Addr dropped;
    const auto a = s.allocate(0xa00, reused, dropped);
    const auto b = s.allocate(0xb00, reused, dropped);
    s.linkShared(a);
    s.linkShared(b);
    EXPECT_EQ(s.sharedLen(), 2u);

    // FreeList exhausted: reuse takes the SharedList *head* (a).
    const auto c = s.allocate(0xc00, reused, dropped);
    EXPECT_TRUE(reused);
    EXPECT_EQ(c, a);
    EXPECT_EQ(dropped, 0xa00u);
    EXPECT_EQ(s.sharedLen(), 1u);
    s.checkIntegrity();
}

TEST(DNodeStore, ExhaustionReturnsNil)
{
    DNodeStore s(1);
    bool reused;
    Addr dropped;
    s.allocate(0xa00, reused, dropped);
    EXPECT_EQ(s.allocate(0xb00, reused, dropped), kNilPtr);
}

TEST(DNodeStore, UnlinkSharedRestoresHomeMaster)
{
    DNodeStore s(2);
    bool reused;
    Addr dropped;
    const auto a = s.allocate(0xa00, reused, dropped);
    s.linkShared(a);
    s.unlinkShared(a);
    EXPECT_FALSE(s.inShared(a));
    int home_masters = 0;
    s.forEachHomeMaster([&](std::uint32_t, Addr) { ++home_masters; });
    EXPECT_EQ(home_masters, 1);
    s.checkIntegrity();
}

TEST(DNodeStore, MisuseIsDetected)
{
    DNodeStore s(2);
    bool reused;
    Addr dropped;
    const auto a = s.allocate(0xa00, reused, dropped);
    EXPECT_THROW(s.unlinkShared(a), PanicError); // not on SharedList
    s.linkShared(a);
    EXPECT_THROW(s.linkShared(a), PanicError); // already linked
    s.free(a);                                 // unlinks then frees
    EXPECT_THROW(s.free(a), PanicError);       // double free
}

/** Property sweep: random allocate/free/link/unlink preserves list
 *  integrity and conservation of slots. */
TEST(DNodeStore, RandomizedIntegrityProperty)
{
    const std::uint64_t entries = 64;
    DNodeStore s(entries);
    Rng rng(99);
    std::set<std::uint32_t> owned;     // allocated, not on SharedList
    std::set<std::uint32_t> shared;    // on SharedList
    std::uint64_t next_line = 0x10000;

    for (int i = 0; i < 20000; ++i) {
        switch (rng.nextBounded(4)) {
          case 0: // allocate
            {
                bool reused;
                Addr dropped;
                const auto slot =
                    s.allocate(next_line, reused, dropped);
                next_line += 0x80;
                if (slot == kNilPtr)
                    break;
                if (reused)
                    shared.erase(slot);
                owned.insert(slot);
                break;
            }
          case 1: // free an owned slot
            if (!owned.empty()) {
                const auto slot = *owned.begin();
                owned.erase(owned.begin());
                s.free(slot);
            }
            break;
          case 2: // hand out mastership
            if (!owned.empty()) {
                const auto slot = *owned.rbegin();
                owned.erase(std::prev(owned.end()));
                s.linkShared(slot);
                shared.insert(slot);
            }
            break;
          case 3: // take mastership back
            if (!shared.empty()) {
                const auto slot = *shared.begin();
                shared.erase(shared.begin());
                s.unlinkShared(slot);
                owned.insert(slot);
            }
            break;
        }
        ASSERT_EQ(s.sharedLen(), shared.size());
        ASSERT_EQ(s.usedSlots(), owned.size() + shared.size());
        if (i % 500 == 0)
            s.checkIntegrity();
    }
    s.checkIntegrity();
}

TEST(DNodeStore, MetadataOverheadMatchesPaper)
{
    // Paper Section 2.2.2: with 128 B lines, 64-bit Directory entries
    // (1.5x as many as Data entries) and 3x32-bit pointers, the
    // Directory and Pointer arrays each take ~7.9% of the DRAM.
    const auto meta = AggDNodeHome::metadataBytesPerLine(1.5);
    EXPECT_EQ(meta, 24u);
    const double overhead = static_cast<double>(meta) / (128 + meta);
    EXPECT_NEAR(overhead, 0.158, 0.005); // 2 x 7.9%
}

} // namespace
} // namespace pimdsm
