/**
 * @file
 * End-to-end integration: run every workload on every architecture on
 * a small machine through the experiment runner, with invariant
 * checking; verify the headline trends hold on a medium run.
 */

#include <gtest/gtest.h>

#include <tuple>

#include "report/experiment.hh"
#include "workload/apps.hh"

namespace pimdsm
{
namespace
{

using Combo = std::tuple<std::string, ArchKind>;

class EveryAppEveryArch : public ::testing::TestWithParam<Combo>
{
};

TEST_P(EveryAppEveryArch, RunsToCompletionCoherently)
{
    const auto &[name, arch] = GetParam();
    auto wl = makeWorkload(name, 1);

    BuildSpec spec;
    spec.arch = arch;
    spec.threads = 4;
    spec.pressure = 0.75;
    spec.dRatio = 1;

    RunOptions opts;
    opts.checkInvariants = true;

    const RunResult r = runWorkload(*wl, spec, opts);
    EXPECT_GT(r.totalTicks, 0u);
    EXPECT_GT(r.instructions, 0u);
    EXPECT_GT(r.time.busy, 0u);
    EXPECT_GT(r.reads.totalAllCount(), 0u);
    EXPECT_EQ(static_cast<int>(r.phases.size()), wl->numPhases());
    for (const auto &p : r.phases)
        EXPECT_GE(p.endTick, p.startTick);
    if (arch != ArchKind::Coma) {
        // AGG/NUMA homes back lines; census must see the footprint.
        EXPECT_GT(r.census.totalLines(), 0u);
    }
}

std::string
comboName(const ::testing::TestParamInfo<Combo> &info)
{
    return std::get<0>(info.param) + "_" +
           archName(std::get<1>(info.param));
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, EveryAppEveryArch,
    ::testing::Combine(::testing::ValuesIn(paperWorkloadNames()),
                       ::testing::Values(ArchKind::Agg, ArchKind::Numa,
                                         ArchKind::Coma)),
    comboName);

TEST(Trends, AggAndComaBeatNumaOnSharingHeavyWorkload)
{
    // Barnes at 8 threads: the widely-shared tree is re-read every
    // iteration; the memory-as-cache organizations replicate it into
    // local memory while NUMA re-fetches it remotely (the paper's
    // Figure 6 first-order effect).
    auto wl = makeWorkload("barnes", 1);
    BuildSpec spec;
    spec.threads = 8;
    spec.pressure = 0.25;

    spec.arch = ArchKind::Numa;
    const auto numa = runWorkload(*wl, spec);
    spec.arch = ArchKind::Agg;
    const auto agg = runWorkload(*wl, spec);
    spec.arch = ArchKind::Coma;
    const auto coma = runWorkload(*wl, spec);

    EXPECT_LT(agg.totalTicks, numa.totalTicks);
    EXPECT_LT(coma.totalTicks, numa.totalTicks);
    // COMA's attraction memories are twice an AGG P-node's, so AGG is
    // "a bit slower" than COMA (paper Section 4.1) but close.
    EXPECT_LT(agg.totalTicks, 2 * coma.totalTicks);

    // Figure 7's mechanism: NUMA serves far more reads remotely.
    const auto remote = [](const RunResult &r) {
        return r.reads.count[static_cast<int>(ReadService::Hop2)] +
               r.reads.count[static_cast<int>(ReadService::Hop3)];
    };
    EXPECT_GT(remote(numa), remote(agg));
}

TEST(Trends, FewerDNodesOnlyModestlySlower)
{
    auto wl = makeWorkload("barnes", 1);
    BuildSpec spec;
    spec.arch = ArchKind::Agg;
    spec.threads = 8;
    // At low pressure the D-nodes serve mostly coherence misses, the
    // regime where the paper reports only ~12% slowdown for 1/4AGG.
    spec.pressure = 0.25;

    spec.dRatio = 1;
    const auto full = runWorkload(*wl, spec);
    spec.dRatio = 4;
    const auto quarter = runWorkload(*wl, spec);

    EXPECT_GE(quarter.totalTicks, full.totalTicks * 95 / 100);
    // The paper reports ~12% on 32-thread machines; our scaled runs
    // are colder (less reuse per line), so allow generous slack — the
    // shape that matters is "slower, but far from 4x slower".
    EXPECT_LT(quarter.totalTicks, full.totalTicks * 2);
}

TEST(Trends, LowerPressureLeavesDMemoryUnused)
{
    auto wl = makeWorkload("radix", 1);
    BuildSpec spec;
    spec.arch = ArchKind::Agg;
    spec.threads = 4;

    spec.pressure = 0.25;
    const auto low = runWorkload(*wl, spec);
    spec.pressure = 0.75;
    const auto high = runWorkload(*wl, spec);

    const auto unused = [](const RunResult &r) {
        const auto cap = r.census.dNodeCapacityLines;
        const auto used = r.census.dNodeUsedLines;
        return cap > used ? static_cast<double>(cap - used) / cap : 0.0;
    };
    EXPECT_GT(unused(low), unused(high));
}

TEST(Trends, DbaseCimOffloadHelpsOnAgg)
{
    DbaseWorkload plain(1, false);
    DbaseWorkload cim(1, true);
    BuildSpec spec;
    spec.arch = ArchKind::Agg;
    spec.threads = 4;
    spec.pressure = 0.75;

    const auto t_plain = runWorkload(plain, spec).totalTicks;
    const auto t_cim = runWorkload(cim, spec).totalTicks;
    EXPECT_LT(t_cim, t_plain);
}

TEST(Runner, DynamicReconfigurationMidRun)
{
    DbaseWorkload wl(1, false);
    BuildSpec spec;
    spec.arch = ArchKind::Agg;
    spec.threads = 4;
    spec.dNodes = 4;
    spec.reconfigurable = true;
    spec.pressure = 0.75;

    RunOptions opts;
    opts.checkInvariants = true;
    // Hash phase on 4P&4D, join phase on 6P&2D.
    opts.reconfig.push_back(ReconfigStep{2, 6, 2});

    const auto r = runWorkload(wl, spec, opts);
    EXPECT_GT(r.reconfigTicks, 0u);
    EXPECT_EQ(r.phases.size(), 3u);
}

} // namespace
} // namespace pimdsm
