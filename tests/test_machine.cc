/**
 * @file
 * Machine-level tests: page placement, message routing, census,
 * builder sizing.
 */

#include <gtest/gtest.h>

#include <set>

#include "machine/builder.hh"
#include "machine/machine.hh"
#include "sim/log.hh"
#include "workload/apps.hh"

namespace pimdsm
{
namespace
{

MachineConfig
tinyCfg(ArchKind arch, int p, int d)
{
    MachineConfig cfg = makeBaseConfig(arch);
    cfg.numPNodes = p;
    cfg.numThreads = p;
    cfg.numDNodes = arch == ArchKind::Agg ? d : 0;
    cfg.pNodeMemBytes = 64 * 1024;
    cfg.dNodeMemBytes = 64 * 1024;
    cfg.l1 = CacheParams{1024, 1, 64, 3};
    cfg.l2 = CacheParams{4096, 1, 64, 6};
    fitMesh(cfg.net, cfg.totalNodes());
    return cfg;
}

TEST(PageMapTest, FirstTouchAndRemap)
{
    PageMap pm(4096);
    EXPECT_EQ(pm.homeOf(0x5000), kInvalidNode);
    pm.assign(0x5123, 3);
    EXPECT_EQ(pm.homeOf(0x5fff), 3);
    EXPECT_EQ(pm.homeOf(0x6000), kInvalidNode);
    pm.remap(0x5000, 7);
    EXPECT_EQ(pm.homeOf(0x5001), 7);
    EXPECT_EQ(pm.pagesHomedAt(7).size(), 1u);
    EXPECT_THROW(pm.remap(0x9000, 1), PanicError);
}

TEST(MachineTest, AggPagesSpreadOverDNodes)
{
    Machine m(tinyCfg(ArchKind::Agg, 4, 2));
    std::set<NodeId> homes;
    for (int i = 0; i < 8; ++i)
        homes.insert(m.homeOf((1ull << 20) + i * 4096, 0));
    EXPECT_EQ(homes, (std::set<NodeId>{4, 5}));
    // Same page => same home, regardless of toucher.
    EXPECT_EQ(m.homeOf(1ull << 20, 3), m.homeOf((1ull << 20) + 128, 1));
}

TEST(MachineTest, NumaFirstTouchBindsToToucher)
{
    Machine m(tinyCfg(ArchKind::Numa, 4, 0));
    EXPECT_EQ(m.homeOf(1ull << 20, 2), 2);
    EXPECT_EQ(m.homeOf(1ull << 20, 0), 2); // already mapped
    EXPECT_EQ(m.homeOf((1ull << 20) + 4096, 0), 0);
}

TEST(MachineTest, RolesByArchitecture)
{
    Machine agg(tinyCfg(ArchKind::Agg, 2, 2));
    EXPECT_EQ(agg.role(0), NodeRole::Compute);
    EXPECT_EQ(agg.role(2), NodeRole::Directory);
    EXPECT_EQ(agg.computeNodes().size(), 2u);
    EXPECT_EQ(agg.directoryNodes().size(), 2u);
    EXPECT_EQ(agg.compute(2), nullptr); // not reconfigurable
    EXPECT_EQ(agg.home(0), nullptr);

    Machine numa(tinyCfg(ArchKind::Numa, 3, 0));
    EXPECT_EQ(numa.role(1), NodeRole::Both);
    EXPECT_EQ(numa.computeNodes().size(), 3u);
    EXPECT_EQ(numa.directoryNodes().size(), 3u);
}

TEST(MachineTest, ReconfigurableBuildsDualControllers)
{
    MachineConfig cfg = tinyCfg(ArchKind::Agg, 2, 2);
    cfg.reconfigurable = true;
    Machine m(cfg);
    EXPECT_NE(m.compute(3), nullptr);
    EXPECT_NE(m.home(0), nullptr);
    // But census only counts active directory nodes.
    EXPECT_EQ(m.collectCensus().dNodeCapacityLines,
              2 * static_cast<AggDNodeHome *>(m.home(2))
                      ->store()
                      .dataEntries());
}

TEST(MachineTest, CensusClassifiesStates)
{
    Machine m(tinyCfg(ArchKind::Agg, 3, 1));
    auto run = [&](NodeId n, Addr a, bool w) {
        bool fired = false;
        m.compute(n)->access(a, w, [&](Tick, ReadService) {
            fired = true;
        });
        m.eq().run();
        ASSERT_TRUE(fired);
    };
    const Addr base = 1ull << 20;
    run(0, base + 0 * 128, true);  // dirty in P
    run(0, base + 1 * 128, false); // shared in P
    run(1, base + 2 * 128, false); // shared in P
    run(2, base + 3 * 128, true);  // dirty in P
    run(2, base + 3 * 128, false); // still cached: no change

    const LineCensus c = m.collectCensus();
    EXPECT_EQ(c.dirtyInPNode, 2u);
    EXPECT_EQ(c.sharedInPNode, 2u);
    EXPECT_EQ(c.totalLines(), 4u);
    EXPECT_GT(c.dNodeCapacityLines, 0u);
}

TEST(BuilderTest, RatiosAndFatDNodes)
{
    FftWorkload wl(1);
    BuildSpec spec;
    spec.arch = ArchKind::Agg;
    spec.threads = 32;
    spec.pressure = 0.75;
    spec.dRatio = 4;
    const MachineConfig cfg = buildConfig(wl, spec);
    EXPECT_EQ(cfg.numPNodes, 32);
    EXPECT_EQ(cfg.numDNodes, 8);
    // Fat D-nodes: each D-node has ~4x a P-node's memory.
    EXPECT_NEAR(static_cast<double>(cfg.dNodeMemBytes) /
                    cfg.pNodeMemBytes,
                4.0, 0.6);
    // Total DRAM ~ footprint / pressure.
    EXPECT_NEAR(static_cast<double>(cfg.totalDramBytes()),
                wl.footprintBytes() / 0.75,
                wl.footprintBytes() * 0.1);
    // Per-application cache sizes from Table 3.
    EXPECT_EQ(cfg.l1.sizeBytes, wl.l1Bytes());
    EXPECT_EQ(cfg.l2.sizeBytes, wl.l2Bytes());
}

TEST(BuilderTest, EqualBisectionBandwidthSetup)
{
    FftWorkload wl(1);
    BuildSpec agg;
    agg.arch = ArchKind::Agg;
    BuildSpec numa;
    numa.arch = ArchKind::Numa;
    const auto cfg_a = buildConfig(wl, agg);
    const auto cfg_n = buildConfig(wl, numa);
    EXPECT_EQ(cfg_a.net.linkBytesPerTick * 2,
              cfg_n.net.linkBytesPerTick * 1);
    EXPECT_EQ(cfg_a.totalNodes(), 64);
    EXPECT_EQ(cfg_n.totalNodes(), 32);
    // Same total DRAM for the equal-cost comparison (Figure 5).
    EXPECT_NEAR(static_cast<double>(cfg_a.totalDramBytes()),
                static_cast<double>(cfg_n.totalDramBytes()),
                cfg_n.totalDramBytes() * 0.05);
}

TEST(BuilderTest, FixedTotalDMemoryOverride)
{
    FftWorkload wl(1);
    BuildSpec spec;
    spec.arch = ArchKind::Agg;
    spec.threads = 8;
    spec.dNodes = 2;
    spec.fixedTotalDMemBytes = 8ull << 20;
    const auto cfg = buildConfig(wl, spec);
    EXPECT_NEAR(static_cast<double>(cfg.dNodeMemBytes), 4.0 * (1 << 20),
                4096.0);
}

} // namespace
} // namespace pimdsm
