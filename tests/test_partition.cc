/**
 * @file
 * Unit tests for the node-to-shard partitioner and the lookahead
 * matrix (sim/partition.hh).
 *
 * The partition is a pure performance knob — the differential suite in
 * test_shard_kernel.cc proves results are identical across schemes —
 * so these tests pin the *shapes*: which region each node lands in,
 * when the grid split falls back to the snake walk, and the matrix
 * properties the engine's horizon bound depends on (triangle closure,
 * symmetric meshes giving symmetric matrices, dead links saturating to
 * kMaxTick and heals restoring the static bound).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "machine/builder.hh"
#include "machine/machine.hh"
#include "sim/partition.hh"

namespace pimdsm
{
namespace
{

// ============================================== scheme plumbing =====

TEST(Partition, ParseSchemeNames)
{
    PartitionScheme s;
    EXPECT_TRUE(parsePartitionScheme("roundrobin", s));
    EXPECT_EQ(s, PartitionScheme::RoundRobin);
    EXPECT_TRUE(parsePartitionScheme("Round-Robin", s));
    EXPECT_EQ(s, PartitionScheme::RoundRobin);
    EXPECT_TRUE(parsePartitionScheme("rr", s));
    EXPECT_EQ(s, PartitionScheme::RoundRobin);
    EXPECT_TRUE(parsePartitionScheme("region", s));
    EXPECT_EQ(s, PartitionScheme::Region);
    EXPECT_TRUE(parsePartitionScheme("REGIONS", s));
    EXPECT_EQ(s, PartitionScheme::Region);
    EXPECT_FALSE(parsePartitionScheme("hilbert", s));
    EXPECT_FALSE(parsePartitionScheme("", s));
}

TEST(Partition, SchemeNamesRoundTrip)
{
    for (auto s : {PartitionScheme::RoundRobin, PartitionScheme::Region}) {
        PartitionScheme back;
        ASSERT_TRUE(parsePartitionScheme(partitionSchemeName(s), back));
        EXPECT_EQ(back, s);
    }
}

TEST(Partition, RoundRobinMapsModulo)
{
    const auto map = roundRobinPartition(10, 4);
    ASSERT_EQ(map.size(), 10u);
    for (int n = 0; n < 10; ++n)
        EXPECT_EQ(map[static_cast<std::size_t>(n)], n % 4);
}

// ============================================== region splits =======

TEST(Partition, RegionGridSplit8x4)
{
    // 8x4 mesh, 32 nodes, 8 shards: S factors as 2 row bands x 4
    // column bands (aspect ratio matches the mesh exactly), so every
    // shard is a contiguous 2x2 block.
    const auto map = regionPartition(32, 8, /*mesh_x=*/8, /*mesh_y=*/4,
                                     /*node_to_slot=*/{});
    ASSERT_EQ(map.size(), 32u);
    for (int n = 0; n < 32; ++n) {
        const int x = n % 8, y = n / 8;
        EXPECT_EQ(map[static_cast<std::size_t>(n)], (y / 2) * 4 + x / 2)
            << "node " << n;
    }
}

TEST(Partition, RegionDegenerateRowMesh)
{
    // 8x1 mesh, 4 shards: only 1 x 4 factors, giving runs of 2.
    const auto map = regionPartition(8, 4, /*mesh_x=*/8, /*mesh_y=*/1,
                                     /*node_to_slot=*/{});
    for (int n = 0; n < 8; ++n)
        EXPECT_EQ(map[static_cast<std::size_t>(n)], n / 2) << "node " << n;
}

TEST(Partition, RegionSnakeFallbackWhenShardsDoNotFactor)
{
    // 3x2 mesh, 6 nodes, 5 shards: 5 factors only as 1x5 or 5x1,
    // neither fits, so the snake walk takes over. The boustrophedon
    // order visits nodes 0,1,2 then 5,4,3; the balanced cut k*5/6
    // gives runs of sizes 2,1,1,1,1 along that walk.
    const auto map = regionPartition(6, 5, /*mesh_x=*/3, /*mesh_y=*/2,
                                     /*node_to_slot=*/{});
    const std::vector<int> expect = {0, 0, 1, 4, 3, 2};
    EXPECT_EQ(map, expect);
}

TEST(Partition, RegionRespectsPlacementPermutation)
{
    // 2x2 mesh, node_to_slot scatters the nodes; the column split must
    // follow the *slots*, so nodes 0 and 3 (slots 0 and 2, the left
    // column) share a shard despite non-adjacent node ids.
    const auto map = regionPartition(4, 2, /*mesh_x=*/2, /*mesh_y=*/2,
                                     /*node_to_slot=*/{0, 3, 1, 2});
    const std::vector<int> expect = {0, 1, 1, 0};
    EXPECT_EQ(map, expect);
}

TEST(Partition, EveryShardGetsANode)
{
    // Sweep shapes and shard counts: a partition that leaves a shard
    // empty would idle an engine slot forever.
    for (int mx : {1, 2, 3, 5, 8}) {
        for (int my : {1, 2, 4}) {
            const int nodes = mx * my;
            for (int s = 1; s <= nodes; ++s) {
                const auto map =
                    regionPartition(nodes, s, mx, my, {});
                std::vector<int> count(static_cast<std::size_t>(s), 0);
                for (int v : map) {
                    ASSERT_GE(v, 0);
                    ASSERT_LT(v, s);
                    ++count[static_cast<std::size_t>(v)];
                }
                for (int c : count)
                    EXPECT_GT(c, 0) << mx << "x" << my << " S=" << s;
            }
        }
    }
}

// ============================================== lookahead matrix ====

TEST(Lookahead, SatAddSaturates)
{
    EXPECT_EQ(satAddTick(5, 7), 12u);
    EXPECT_EQ(satAddTick(kMaxTick, 1), kMaxTick);
    EXPECT_EQ(satAddTick(kMaxTick - 3, 5), kMaxTick);
    EXPECT_EQ(satAddTick(kMaxTick - 3, 2), kMaxTick - 1);
}

TEST(Lookahead, SymmetricLatencyGivesSymmetricMatrix)
{
    const std::vector<int> shard = {0, 1, 0, 1}; // round-robin, 2 shards
    const auto lat = [](NodeId a, NodeId b) {
        return static_cast<Tick>((a > b ? a - b : b - a) * 10);
    };
    const LookaheadMatrix m = buildLookaheadMatrix(shard, 2, lat);
    EXPECT_EQ(m.at(0, 1), 10u);
    EXPECT_EQ(m.at(1, 0), 10u);
    EXPECT_EQ(m.at(0, 0), 20u);
    EXPECT_EQ(m.at(1, 1), 20u);
}

TEST(Lookahead, SingleNodeShardDiagonalClosesThroughNeighbour)
{
    // A shard holding one node has no intra-shard pair; before closure
    // its diagonal would be kMaxTick ("it can never affect itself"),
    // which is unsound — it can, via a round trip through the other
    // shard. Closure gives the true bound 2L.
    const std::vector<int> shard = {0, 1};
    const LookaheadMatrix m =
        buildLookaheadMatrix(shard, 2, [](NodeId, NodeId) {
            return static_cast<Tick>(7);
        });
    EXPECT_EQ(m.at(0, 1), 7u);
    EXPECT_EQ(m.at(1, 0), 7u);
    EXPECT_EQ(m.at(0, 0), 14u);
    EXPECT_EQ(m.at(1, 1), 14u);
}

TEST(Lookahead, TriangleClosureTightensLongPairs)
{
    // Direct 0 -> 2 latency is 100 but a relay through shard 1 makes
    // influence possible after 3 + 4: the closed bound must honour the
    // cheapest transitive route, not the direct link.
    const std::vector<int> shard = {0, 1, 2};
    const auto lat = [](NodeId a, NodeId b) -> Tick {
        const int lo = a < b ? a : b, hi = a < b ? b : a;
        if (lo == 0 && hi == 1)
            return 3;
        if (lo == 1 && hi == 2)
            return 4;
        return 100; // 0 <-> 2
    };
    const LookaheadMatrix m = buildLookaheadMatrix(shard, 3, lat);
    EXPECT_EQ(m.at(0, 2), 7u);
    EXPECT_EQ(m.at(2, 0), 7u);
    EXPECT_EQ(m.at(0, 0), 6u); // 0 -> 1 -> 0
    EXPECT_EQ(m.at(2, 2), 8u); // 2 -> 1 -> 2
}

TEST(Lookahead, ZeroLatencyClampsToOne)
{
    // A zero entry would grant horizons equal to the earliest pending
    // event and stall the engine; the builder floors raw pairs at 1.
    const std::vector<int> shard = {0, 1};
    const LookaheadMatrix m =
        buildLookaheadMatrix(shard, 2, [](NodeId, NodeId) {
            return static_cast<Tick>(0);
        });
    EXPECT_EQ(m.at(0, 1), 1u);
    EXPECT_EQ(m.at(0, 0), 2u);
}

TEST(Lookahead, DeadPairRelaysThroughThirdShard)
{
    // The direct 0 <-> 1 route is severed (kMaxTick) but both still
    // talk to shard 2: influence flows through the relay, so the
    // closed matrix must keep the pair finite.
    const std::vector<int> shard = {0, 1, 2};
    const auto lat = [](NodeId a, NodeId b) -> Tick {
        const int lo = a < b ? a : b, hi = a < b ? b : a;
        if (lo == 0 && hi == 1)
            return kMaxTick;
        return 5;
    };
    const LookaheadMatrix m = buildLookaheadMatrix(shard, 3, lat);
    EXPECT_EQ(m.at(0, 1), 10u); // 0 -> 2 -> 1
    EXPECT_EQ(m.at(1, 0), 10u);
    EXPECT_EQ(m.at(0, 2), 5u);
}

TEST(Lookahead, FullySeveredPairsStaySaturated)
{
    const std::vector<int> shard = {0, 1};
    const LookaheadMatrix m =
        buildLookaheadMatrix(shard, 2, [](NodeId, NodeId) {
            return kMaxTick;
        });
    EXPECT_EQ(m.at(0, 1), kMaxTick);
    EXPECT_EQ(m.at(1, 0), kMaxTick);
    EXPECT_EQ(m.at(0, 0), kMaxTick);
}

// ============================================== machine rebuild =====

MachineConfig
twoNodeCfg()
{
    MachineConfig cfg = makeBaseConfig(ArchKind::Numa);
    cfg.numPNodes = 2;
    cfg.numThreads = 2;
    cfg.pNodeMemBytes = 1 << 20;
    cfg.partition = PartitionScheme::RoundRobin;
    cfg.shards.count = 2;
    cfg.shards.threads = 1;
    cfg.net.meshX = 2;
    cfg.net.meshY = 1;
    cfg.validate();
    return cfg;
}

TEST(LookaheadMachine, LinkDeathAndHealRebuildTheMatrix)
{
    Machine m(twoNodeCfg());
    const LookaheadMatrix &L = m.lookaheadMatrix();
    ASSERT_EQ(L.shards, 2);
    const Tick d = L.at(0, 1);
    ASSERT_NE(d, kMaxTick);
    EXPECT_EQ(L.at(1, 0), d); // symmetric mesh

    // A single-node shard's mesh round trip is 2d, but the machine
    // also clamps the diagonal to syncCap(): a deferred op parked at t
    // re-injects into its own shard at t + syncCap through the
    // barrier, a self edge the mesh closure cannot see.
    const Tick diag = std::min(2 * d, m.syncCap());
    EXPECT_EQ(L.at(0, 0), diag);
    EXPECT_EQ(L.at(1, 1), diag);

    // Kill the channel out of router (0, 0) east (a physical channel
    // carries both directed links): the two-node mesh partitions, so
    // the cross pair saturates — but the diagonals stay at the op
    // channel's bound, which no mesh cut severs.
    m.mesh().setLinkAlive(0, 0, /*dir=E*/ 0, false);
    EXPECT_EQ(L.at(0, 1), kMaxTick);
    EXPECT_EQ(L.at(1, 0), kMaxTick);
    EXPECT_EQ(L.at(0, 0), m.syncCap());
    EXPECT_EQ(L.at(1, 1), m.syncCap());

    // Healing must restore the static bound exactly.
    m.mesh().setLinkAlive(0, 0, 0, true);
    EXPECT_EQ(L.at(0, 1), d);
    EXPECT_EQ(L.at(1, 0), d);
    EXPECT_EQ(L.at(0, 0), diag);
    EXPECT_EQ(L.at(1, 1), diag);
}

} // namespace
} // namespace pimdsm
