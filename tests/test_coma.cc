/**
 * @file
 * Deeper flat-COMA tests: injection refusal chains, disk overflow and
 * restore, mastership-grant fallback when sharer bits are stale, and
 * replacement-priority interplay.
 */

#include <gtest/gtest.h>

#include "machine/machine.hh"

namespace pimdsm
{
namespace
{

MachineConfig
comaCfg(int nodes, std::uint64_t am_bytes)
{
    MachineConfig cfg = makeBaseConfig(ArchKind::Coma);
    cfg.numPNodes = nodes;
    cfg.numThreads = nodes;
    cfg.numDNodes = 0;
    cfg.pNodeMemBytes = am_bytes;
    cfg.l1 = CacheParams{512, 1, 64, 3};
    cfg.l2 = CacheParams{2048, 1, 64, 6};
    fitMesh(cfg.net, cfg.totalNodes());
    cfg.validate();
    return cfg;
}

void
doAccess(Machine &m, NodeId n, Addr a, bool write)
{
    bool done = false;
    m.compute(n)->access(a, write,
                         [&](Tick, ReadService) { done = true; });
    m.eq().run();
    ASSERT_TRUE(done);
}

constexpr Addr kBase = 1ull << 20;

TEST(ComaInjection, DisplacedMasterLandsAtProviderWithSameVersion)
{
    MachineConfig cfg = comaCfg(4, 4096); // 8 sets x 4 ways
    Machine m(cfg);

    doAccess(m, 0, kBase, true); // dirty master at node 0
    const Version v = m.latestVersion(blockAlign(kBase, 128));

    // Displace it with conflicting dirty lines (same set).
    const Addr stride = 8 * 128;
    for (int i = 1; i < 8; ++i)
        doAccess(m, 0, kBase + i * stride, true);
    m.eq().run();

    auto *home = static_cast<ComaHome *>(m.home(0));
    EXPECT_GE(home->injectionsStarted(), 1u);

    // The line must be recoverable with its version intact; the
    // read-freshness checks panic otherwise.
    doAccess(m, 1, kBase, false);
    EXPECT_EQ(m.latestVersion(blockAlign(kBase, 128)), v);
    m.checkInvariants();
}

TEST(ComaInjection, RefusalChainFallsBackToDisk)
{
    // Two nodes; every set way filled with dirty (owned) lines on
    // both, so injections are refused and the line overflows to disk.
    MachineConfig cfg = comaCfg(2, 4096); // 8 sets x 4 ways
    Machine m(cfg);

    const Addr stride = 8 * 128;
    // Node 1 fills one set of its AM with dirty lines homed at itself.
    for (int i = 0; i < 4; ++i)
        doAccess(m, 1, kBase + (16 + i) * stride + 64 * 1024, true);

    // Node 0 writes a line in the same set, then displaces it with
    // more dirty lines; node 1's set is full of owned lines, so
    // providers refuse.
    for (int i = 0; i < 12; ++i)
        doAccess(m, 0, kBase + i * stride, true);
    m.eq().run();

    auto *home0 = static_cast<ComaHome *>(m.home(0));
    auto *home1 = static_cast<ComaHome *>(m.home(1));
    const auto overflows =
        home0->diskOverflows() + home1->diskOverflows();
    const auto accepted = [&] {
        std::uint64_t total = 0;
        for (NodeId n = 0; n < 2; ++n) {
            total += static_cast<CachedMemCompute *>(m.compute(n))
                         ->injectionsAccepted();
        }
        return total;
    }();
    // Under this much pressure something must have been injected or
    // spilled; the machine stays coherent either way.
    EXPECT_GT(overflows + accepted, 0u);
    m.checkInvariants();

    // Disk-overflowed lines restore on the next read.
    for (int i = 0; i < 12; ++i)
        doAccess(m, 1, kBase + i * stride, false);
    m.checkInvariants();
}

TEST(ComaInjection, ProviderRefusesWhenSetFullOfOwnedLines)
{
    MachineConfig cfg = comaCfg(2, 4096);
    Machine m(cfg);
    auto *am1 = static_cast<CachedMemCompute *>(m.compute(1));

    const Addr stride = 8 * 128;
    for (int i = 0; i < 4; ++i)
        doAccess(m, 1, kBase + (100 + i) * stride, true);

    // Count refusals after forcing node 0 evictions into that set.
    for (int i = 0; i < 8; ++i)
        doAccess(m, 0, kBase + (100 + i) * stride + 64, true);
    m.eq().run();
    // Not deterministic which provider is asked first, but with only
    // one other node, any refusal registers here.
    EXPECT_GE(am1->injectionsRefused() + am1->injectionsAccepted(), 1u);
    m.checkInvariants();
}

TEST(ComaMastership, GrantFallsBackWhenSharersAreStale)
{
    MachineConfig cfg = comaCfg(3, 4096);
    Machine m(cfg);

    doAccess(m, 0, kBase, false); // master at 0 (home 0)
    doAccess(m, 1, kBase, false); // sharer at 1
    doAccess(m, 2, kBase, false); // sharer at 2

    // Node 1 and 2 silently drop their copies via conflict pressure.
    const Addr stride = 8 * 128;
    for (NodeId n : {1, 2}) {
        for (int i = 1; i < 8; ++i)
            doAccess(m, n, kBase + i * stride + n * 64, false);
    }
    // Now displace the master at node 0: grants to stale sharers nack
    // and the home falls back to injection (or disk).
    for (int i = 1; i < 8; ++i)
        doAccess(m, 0, kBase + i * stride, true);
    m.eq().run();
    m.checkInvariants();

    // The data must still be readable with the correct version.
    doAccess(m, 2, kBase, false);
    m.checkInvariants();
}

TEST(ComaReplacement, SharedCopiesSacrificedBeforeMasters)
{
    MachineConfig cfg = comaCfg(2, 4096); // 8 sets x 4 ways
    Machine m(cfg);

    const Addr stride = 8 * 128;
    // Node 0: two master (dirty) lines + fill with shared copies of
    // node-1-homed lines, all in one set.
    doAccess(m, 0, kBase + 0 * stride, true);
    doAccess(m, 0, kBase + 1 * stride, true);
    doAccess(m, 1, kBase + 2 * stride + 64 * 1024, true);
    doAccess(m, 1, kBase + 3 * stride + 64 * 1024, true);
    m.eq().run();

    auto *home0 = static_cast<ComaHome *>(m.home(0));
    const auto injections_before = home0->injectionsStarted();

    // Shared fills into the same set displace the shared copies, not
    // the dirty masters: no new injections.
    auto *am0 = static_cast<CachedMemCompute *>(m.compute(0));
    doAccess(m, 0, kBase + 2 * stride + 64 * 1024, false);
    doAccess(m, 0, kBase + 3 * stride + 64 * 1024, false);
    m.eq().run();
    EXPECT_EQ(home0->injectionsStarted(), injections_before);
    EXPECT_EQ(am0->peekState(kBase + 0 * stride), CohState::Dirty);
    EXPECT_EQ(am0->peekState(kBase + 1 * stride), CohState::Dirty);
    m.checkInvariants();
}

} // namespace
} // namespace pimdsm
