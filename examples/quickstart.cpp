/**
 * @file
 * Quickstart: build a machine for each organization (NUMA, COMA, AGG),
 * run one workload, and print the execution-time breakdown, the read
 * latency decomposition, and the key protocol counters.
 *
 * Usage: quickstart [workload] [threads] [pressure%] [dratio]
 *   e.g.  quickstart barnes 8 75 1
 */

#include <cstdlib>
#include <iostream>
#include <string>

#include "report/experiment.hh"
#include "report/report.hh"
#include "workload/workload.hh"

using namespace pimdsm;

int
main(int argc, char **argv)
{
    const std::string name = argc > 1 ? argv[1] : "ocean";
    const int threads = argc > 2 ? std::atoi(argv[2]) : 8;
    const double pressure =
        (argc > 3 ? std::atoi(argv[3]) : 75) / 100.0;
    const int dratio = argc > 4 ? std::atoi(argv[4]) : 1;

    auto wl = makeWorkload(name);
    std::cout << "workload " << wl->name() << ", " << threads
              << " threads, pressure " << pressure * 100 << "%, 1/"
              << dratio << " AGG\n\n";

    TablePrinter table({"arch", "total Mcycles", "memory", "processor",
                        "FLC", "SLC", "Mem", "2Hop", "3Hop",
                        "msgs", "D-util"});

    for (ArchKind arch :
         {ArchKind::Numa, ArchKind::Coma, ArchKind::Agg}) {
        BuildSpec spec;
        spec.arch = arch;
        spec.threads = threads;
        spec.pressure = pressure;
        spec.dRatio = dratio;
        const RunResult r = runWorkload(*wl, spec);

        const auto &c = r.reads.count;
        const double total_reads =
            static_cast<double>(r.reads.totalAllCount());
        auto frac = [&](ReadService s) {
            return TablePrinter::pct(
                c[static_cast<int>(s)] / total_reads);
        };
        std::cout << archName(arch) << " avg read latency by class:";
        for (int i = 0; i < ReadLatencyStats::kNum; ++i) {
            const auto n = r.reads.count[i];
            std::cout << " "
                      << readServiceName(static_cast<ReadService>(i))
                      << "="
                      << (n ? r.reads.totalLatency[i] / n : 0)
                      << "(x" << n << ")";
        }
        std::cout << "\n";
        table.addRow({archName(arch),
                      TablePrinter::num(r.totalTicks / 1e6),
                      TablePrinter::pct(r.memoryFraction()),
                      TablePrinter::pct(1 - r.memoryFraction()),
                      frac(ReadService::FLC), frac(ReadService::SLC),
                      frac(ReadService::LocalMem),
                      frac(ReadService::Hop2), frac(ReadService::Hop3),
                      TablePrinter::num(r.messages / 1e3, 0) + "k",
                      TablePrinter::pct(r.dNodeUtilization)});

        if (arch == ArchKind::Agg) {
            std::cout << "AGG census: dirtyInP=" << r.census.dirtyInPNode
                      << " sharedInP=" << r.census.sharedInPNode
                      << " dNodeOnly=" << r.census.dNodeOnly
                      << " capacity=" << r.census.dNodeCapacityLines
                      << " used=" << r.census.dNodeUsedLines << "\n";
            std::cout << "AGG counters:\n";
            for (const auto &[k, v] : r.counters)
                std::cout << "  " << k << " = " << v << "\n";
            std::cout << "\n";
        }
    }
    table.print(std::cout);
    return 0;
}
