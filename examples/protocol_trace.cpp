/**
 * @file
 * Annotated protocol walk-through on a 3-node AGG machine: issues a
 * small scripted sequence of accesses with protocol tracing enabled,
 * so every coherence message (requests, forwards, invalidations,
 * writebacks, mastership grants) can be read on stderr alongside the
 * narration on stdout.
 *
 * This is the fastest way to see the paper's Section 2.2.2 protocol
 * in action: cold read with mastership grant, second reader, write
 * with invalidations (and the home Data slot being reclaimed), 3-hop
 * dirty read with sharing writeback, and a capacity writeback.
 */

#include <iostream>

#include "machine/machine.hh"
#include "sim/log.hh"

using namespace pimdsm;

namespace
{

void
doAccess(Machine &m, NodeId n, Addr a, bool write, const char *what)
{
    std::cout << "\n--- node " << n << (write ? " writes " : " reads ")
              << "0x" << std::hex << a << std::dec << ": " << what
              << "\n";
    bool done = false;
    Tick lat = 0;
    const Tick start = m.eq().curTick();
    m.compute(n)->access(a, write, [&](Tick t, ReadService s) {
        done = true;
        lat = t - start;
        std::cout << "    -> served by " << readServiceName(s)
                  << " in " << lat << " cycles\n";
    });
    m.eq().run();
    if (!done)
        panic("access did not complete");
}

void
showHome(Machine &m, NodeId home, Addr a)
{
    const DirEntry *e = m.home(home)->directory().find(
        blockAlign(a, 128));
    if (!e)
        return;
    std::cout << "    home state: "
              << (e->state == DirEntry::State::Dirty
                      ? "Dirty"
                      : e->state == DirEntry::State::Shared
                            ? "Shared"
                            : "Uncached")
              << ", sharers=0x" << std::hex << e->sharers << std::dec
              << ", masterOut=" << e->masterOut
              << ", homeHasData=" << e->homeHasData << "\n";
    auto *agg = static_cast<AggDNodeHome *>(m.home(home));
    std::cout << "    D-node store: " << agg->store().usedSlots()
              << " slots used, SharedList length "
              << agg->store().sharedLen() << "\n";
}

} // namespace

int
main()
{
    Trace::enable("proto"); // every message prints on stderr

    MachineConfig cfg = makeBaseConfig(ArchKind::Agg);
    cfg.numPNodes = 2;
    cfg.numThreads = 2;
    cfg.numDNodes = 1;
    cfg.pNodeMemBytes = 64 * 1024;
    cfg.dNodeMemBytes = 64 * 1024;
    cfg.l1 = CacheParams{1024, 1, 64, 3};
    cfg.l2 = CacheParams{4096, 1, 64, 6};
    fitMesh(cfg.net, cfg.totalNodes());
    Machine m(cfg);

    const Addr line = 1ull << 20;
    const NodeId home = 2; // the only D-node

    std::cout << "AGG machine: P-nodes {0, 1}, D-node {2}. Messages "
                 "trace on stderr.\n";

    doAccess(m, 0, line, false,
             "cold read; the home allocates a Data slot, zero-fills, "
             "and hands out mastership (SharedMaster)");
    showHome(m, home, line);

    doAccess(m, 1, line, false,
             "second reader gets a plain Shared copy from the home");
    showHome(m, home, line);

    doAccess(m, 1, line, true,
             "write: the home invalidates node 0 (the master) and "
             "frees its Data slot -- dirty lines keep no home "
             "placeholder");
    showHome(m, home, line);

    doAccess(m, 0, line, false,
             "read of a dirty line: 3-hop forward to node 1, which "
             "downgrades to SharedMaster and sends a sharing "
             "writeback so the home regains a copy");
    m.eq().run();
    showHome(m, home, line);

    doAccess(m, 0, line + 64, false,
             "second half of the same memory line hits node 0's own "
             "copy");

    std::cout << "\n--- node 1 reads conflicting lines to force a "
                 "capacity writeback of its SharedMaster copy\n";
    for (int i = 1; i <= 8; ++i) {
        bool done = false;
        m.compute(1)->access(line + i * 8 * 128, false,
                             [&](Tick, ReadService) { done = true; });
        m.eq().run();
    }
    m.eq().run();
    showHome(m, home, line);

    m.checkInvariants();
    std::cout << "\nall invariants hold; see DESIGN.md for the "
                 "protocol details.\n";
    return 0;
}
