/**
 * @file
 * Design-space explorer: runs one workload across P/D-node partitions
 * of a fixed-size AGG machine, then demonstrates the paper's static
 * tuning recipe (Section 2.3): run once with a wasteful number of
 * D-nodes, record D-node utilization, and use it as a hint to pick the
 * partition for subsequent runs.
 *
 * Usage: pd_explorer [workload] [total_nodes] [pressure%]
 *   e.g.  pd_explorer radix 16 75
 */

#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "report/experiment.hh"
#include "report/report.hh"
#include "workload/workload.hh"

using namespace pimdsm;

namespace
{

RunResult
runPartition(const Workload &wl, int p, int d, double pressure)
{
    BuildSpec spec;
    spec.arch = ArchKind::Agg;
    spec.threads = p;
    spec.dNodes = d;
    spec.pressure = pressure;
    return runWorkload(wl, spec);
}

} // namespace

int
main(int argc, char **argv)
{
    const std::string name = argc > 1 ? argv[1] : "radix";
    const int total = argc > 2 ? std::atoi(argv[2]) : 16;
    const double pressure =
        (argc > 3 ? std::atoi(argv[3]) : 75) / 100.0;

    auto wl = makeWorkload(name);
    std::cout << "exploring " << total << "-node AGG partitions for "
              << wl->name() << " at " << pressure * 100
              << "% pressure\n\n";

    // Sweep the -45 degree line of Figure 4: P + D = total.
    TablePrinter t({"partition", "Mcycles", "memory time",
                    "D-node util", "time x chips"});
    double best_time = 1e30;
    int best_p = 0;
    for (int p = total / 4; p <= total - 1; p += total / 4) {
        const int d = total - p;
        const RunResult r = runPartition(*wl, p, d, pressure);
        t.addRow({std::to_string(p) + "P & " + std::to_string(d) + "D",
                  TablePrinter::num(r.totalTicks / 1e6),
                  TablePrinter::pct(r.memoryFraction()),
                  TablePrinter::pct(r.dNodeUtilization),
                  TablePrinter::num(r.totalTicks / 1e6 * total)});
        if (r.totalTicks < best_time) {
            best_time = static_cast<double>(r.totalTicks);
            best_p = p;
        }
    }
    t.print(std::cout);
    std::cout << "exhaustive best: " << best_p << "P & "
              << total - best_p << "D\n\n";

    // The paper's tuning recipe: one wasteful run, then shrink D until
    // the recorded utilization says the D-nodes would saturate.
    std::cout << "paper recipe: start wasteful (P = D), read the "
                 "D-node utilization, rescale:\n";
    const int p0 = total / 2;
    const RunResult probe = runPartition(*wl, p0, total - p0, pressure);
    std::cout << "  probe run " << p0 << "P & " << total - p0
              << "D: D-node utilization "
              << TablePrinter::pct(probe.dNodeUtilization) << "\n";

    // Keep projected utilization under ~70%: d_min ~ d0 * util / 0.7.
    int d_suggest = static_cast<int>(
        static_cast<double>(total - p0) * probe.dNodeUtilization /
            0.7 + 0.999);
    if (d_suggest < 1)
        d_suggest = 1;
    if (d_suggest > total - 1)
        d_suggest = total - 1;
    const int p_suggest = total - d_suggest;
    std::cout << "  suggested partition: " << p_suggest << "P & "
              << d_suggest << "D\n";

    const RunResult tuned =
        runPartition(*wl, p_suggest, d_suggest, pressure);
    std::cout << "  tuned run: "
              << TablePrinter::num(tuned.totalTicks / 1e6)
              << " Mcycles (probe was "
              << TablePrinter::num(probe.totalTicks / 1e6)
              << "), D-node utilization "
              << TablePrinter::pct(tuned.dNodeUtilization) << "\n";
    return 0;
}
