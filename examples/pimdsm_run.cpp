/**
 * @file
 * General-purpose command-line driver: run any workload on any
 * machine organization with every knob exposed, and emit either a
 * human-readable report or a CSV row (for scripting sweeps).
 *
 * Usage:
 *   pimdsm_run [options]
 *     --app NAME          fft|radix|ocean|barnes|swim|tomcatv|dbase
 *                         (default ocean); dbase-cim for the CIM variant
 *     --arch NAME         agg|coma|numa (default agg)
 *     --threads N         application threads / P-nodes (default 16)
 *     --dnodes N          explicit D-node count (AGG)
 *     --dratio N          AGG P:D ratio denominator (default 1)
 *     --pressure PCT      memory pressure percent (default 75)
 *     --scale N           problem-size multiplier (default 1)
 *     --pointers N        limited-pointer directory (0 = full map)
 *     --lru-localmem      strict-LRU tagged-memory replacement
 *     --no-master         disable the shared-master state (ablation)
 *     --sw-factor F       software handler cost multiplier
 *     --seed N            deterministic seed
 *     --check             run invariant checks after every phase
 *     --csv               one CSV row (with --csv-header for the header)
 *     --trace             print every coherence message to stderr
 *
 * Examples:
 *   pimdsm_run --app barnes --arch numa --threads 32 --pressure 25
 *   pimdsm_run --app dbase-cim --threads 16 --dnodes 16 --csv
 */

#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>

#include "report/experiment.hh"
#include "report/report.hh"
#include "sim/log.hh"
#include "workload/apps.hh"

using namespace pimdsm;

namespace
{

struct Options
{
    std::string app = "ocean";
    std::string arch = "agg";
    int threads = 16;
    int dnodes = 0;
    int dratio = 1;
    int pressure = 75;
    int scale = 1;
    int pointers = 0;
    bool lruLocalMem = false;
    bool noMaster = false;
    double swFactor = 1.0;
    std::uint64_t seed = 1;
    bool check = false;
    bool csv = false;
    bool csvHeader = false;
    bool trace = false;
};

[[noreturn]] void
usage(const char *argv0)
{
    std::cerr << "usage: " << argv0
              << " [--app NAME] [--arch agg|coma|numa] [--threads N]\n"
                 "  [--dnodes N] [--dratio N] [--pressure PCT]"
                 " [--scale N]\n"
                 "  [--pointers N] [--lru-localmem] [--no-master]"
                 " [--sw-factor F]\n"
                 "  [--seed N] [--check] [--csv] [--csv-header]"
                 " [--trace]\n";
    std::exit(2);
}

Options
parse(int argc, char **argv)
{
    Options o;
    auto need = [&](int &i) -> const char * {
        if (++i >= argc)
            usage(argv[0]);
        return argv[i];
    };
    for (int i = 1; i < argc; ++i) {
        const std::string a = argv[i];
        if (a == "--app")
            o.app = need(i);
        else if (a == "--arch")
            o.arch = need(i);
        else if (a == "--threads")
            o.threads = std::atoi(need(i));
        else if (a == "--dnodes")
            o.dnodes = std::atoi(need(i));
        else if (a == "--dratio")
            o.dratio = std::atoi(need(i));
        else if (a == "--pressure")
            o.pressure = std::atoi(need(i));
        else if (a == "--scale")
            o.scale = std::atoi(need(i));
        else if (a == "--pointers")
            o.pointers = std::atoi(need(i));
        else if (a == "--lru-localmem")
            o.lruLocalMem = true;
        else if (a == "--no-master")
            o.noMaster = true;
        else if (a == "--sw-factor")
            o.swFactor = std::atof(need(i));
        else if (a == "--seed")
            o.seed = std::strtoull(need(i), nullptr, 10);
        else if (a == "--check")
            o.check = true;
        else if (a == "--csv")
            o.csv = true;
        else if (a == "--csv-header")
            o.csvHeader = true;
        else if (a == "--trace")
            o.trace = true;
        else
            usage(argv[0]);
    }
    return o;
}

void
printCsvHeader()
{
    std::cout << "app,arch,threads,dnodes,pressure,scale,total_cycles,"
                 "memory_frac,busy,sync,mem_stall,reads,flc,slc,"
                 "localmem,hop2,hop3,messages,dnode_util,instructions"
              << "\n";
}

} // namespace

int
main(int argc, char **argv)
{
    const Options o = parse(argc, argv);
    if (o.csvHeader) {
        printCsvHeader();
        if (argc == 2)
            return 0;
    }
    if (o.trace)
        Trace::enable("proto");

    try {
        std::unique_ptr<Workload> wl;
        if (o.app == "dbase-cim")
            wl = std::make_unique<DbaseWorkload>(o.scale, true);
        else
            wl = makeWorkload(o.app, o.scale);

        BuildSpec spec;
        spec.arch = o.arch == "numa"   ? ArchKind::Numa
                    : o.arch == "coma" ? ArchKind::Coma
                    : o.arch == "agg"
                        ? ArchKind::Agg
                        : throw FatalError("unknown arch " + o.arch);
        spec.threads = o.threads;
        spec.dNodes = o.dnodes;
        spec.dRatio = o.dratio;
        spec.pressure = o.pressure / 100.0;

        MachineConfig cfg = buildConfig(*wl, spec);
        cfg.directoryPointers = o.pointers;
        cfg.mem.lruLocalMemory = o.lruLocalMem;
        cfg.aggGrantsMastership = !o.noMaster;
        cfg.handlers.softwareFactor = o.swFactor;
        cfg.seed = o.seed;

        RunOptions opts;
        opts.checkInvariants = o.check;
        const RunResult r = runWorkload(cfg, *wl, opts);

        if (o.csv) {
            const auto &c = r.reads.count;
            std::cout << wl->name() << "," << o.arch << ","
                      << o.threads << "," << cfg.numDNodes << ","
                      << o.pressure << "," << o.scale << ","
                      << r.totalTicks << "," << r.memoryFraction()
                      << "," << r.time.busy << "," << r.time.sync
                      << "," << r.time.memoryStall << ","
                      << r.reads.totalAllCount() << "," << c[0] << ","
                      << c[1] << "," << c[2] << "," << c[3] << ","
                      << c[4] << "," << r.messages << ","
                      << r.dNodeUtilization << "," << r.instructions
                      << "\n";
            return 0;
        }

        std::cout << wl->name() << " on " << archName(spec.arch)
                  << ": " << o.threads << " threads";
        if (spec.arch == ArchKind::Agg)
            std::cout << ", " << cfg.numDNodes << " D-nodes";
        std::cout << ", " << o.pressure << "% pressure\n\n";

        TablePrinter t({"metric", "value"});
        t.addRow({"execution time",
                  TablePrinter::num(r.totalTicks / 1e6) + " Mcycles"});
        t.addRow({"memory time",
                  TablePrinter::pct(r.memoryFraction())});
        t.addRow({"instructions",
                  TablePrinter::num(r.instructions / 1e6) + " M"});
        t.addRow({"messages",
                  TablePrinter::num(r.messages / 1e3, 0) + " k"});
        t.addRow({"D-node utilization",
                  TablePrinter::pct(r.dNodeUtilization)});
        const auto &c = r.reads.count;
        const double total =
            static_cast<double>(r.reads.totalAllCount());
        for (int i = 0; i < ReadLatencyStats::kNum; ++i) {
            t.addRow({std::string("reads: ") +
                          readServiceName(static_cast<ReadService>(i)),
                      TablePrinter::pct(total ? c[i] / total : 0)});
        }
        t.print(std::cout);

        std::cout << "\nper-phase:\n";
        TablePrinter pt({"phase", "Mcycles", "memory frac"});
        for (const auto &p : r.phases) {
            const double ptotal =
                static_cast<double>(p.time.total());
            pt.addRow({p.name,
                       TablePrinter::num(p.duration() / 1e6),
                       TablePrinter::pct(
                           ptotal > 0 ? p.time.memoryStall / ptotal
                                      : 0)});
        }
        pt.print(std::cout);
    } catch (const std::exception &e) {
        std::cerr << e.what() << "\n";
        return 1;
    }
    return 0;
}
