/**
 * @file
 * Computation-in-memory demo (Section 2.4): runs the TPC-D query 3
 * workload with P-node table scans (Plain) and with the select
 * offloaded to the home D-nodes (Opt), showing the phase-by-phase
 * effect on execution time and on network traffic.
 *
 * Usage: dbase_cim [threads] [dnodes]
 */

#include <cstdlib>
#include <iostream>

#include "report/experiment.hh"
#include "report/report.hh"
#include "workload/apps.hh"

using namespace pimdsm;

int
main(int argc, char **argv)
{
    const int threads = argc > 1 ? std::atoi(argv[1]) : 16;
    const int dnodes = argc > 2 ? std::atoi(argv[2]) : 16;

    std::cout << "TPC-D query 3 on an AGG machine with " << threads
              << " P-nodes and " << dnodes << " D-nodes\n\n";

    BuildSpec spec;
    spec.arch = ArchKind::Agg;
    spec.threads = threads;
    spec.dNodes = dnodes;
    spec.pressure = 0.75;

    DbaseWorkload plain(1, false);
    DbaseWorkload opt(1, true);
    const RunResult rp = runWorkload(plain, spec);
    const RunResult ro = runWorkload(opt, spec);

    TablePrinter t({"phase", "Plain Mcycles", "Opt Mcycles",
                    "speedup"});
    for (std::size_t i = 0; i < rp.phases.size(); ++i) {
        t.addRow({rp.phases[i].name,
                  TablePrinter::num(rp.phases[i].duration() / 1e6),
                  TablePrinter::num(ro.phases[i].duration() / 1e6),
                  TablePrinter::num(
                      static_cast<double>(rp.phases[i].duration()) /
                      ro.phases[i].duration()) + "x"});
    }
    t.addRow({"total", TablePrinter::num(rp.totalTicks / 1e6),
              TablePrinter::num(ro.totalTicks / 1e6),
              TablePrinter::num(static_cast<double>(rp.totalTicks) /
                                ro.totalTicks) + "x"});
    t.print(std::cout);

    std::cout << "\nwhy: with CIM, only matching record pointers "
                 "cross the network --\n";
    std::cout << "  Plain moved "
              << TablePrinter::num(rp.messages / 1e3, 0)
              << "k messages; Opt moved "
              << TablePrinter::num(ro.messages / 1e3, 0)
              << "k messages\n";
    std::cout << "  Plain memory-stall fraction "
              << TablePrinter::pct(rp.memoryFraction()) << "; Opt "
              << TablePrinter::pct(ro.memoryFraction()) << "\n";
    std::cout << "  (the D-node processors do the scanning instead: "
                 "utilization "
              << TablePrinter::pct(rp.dNodeUtilization) << " -> "
              << TablePrinter::pct(ro.dNodeUtilization) << ")\n";
    return 0;
}
