/**
 * @file
 * Fault campaign: sweep mesh drop-rate x mid-run D-node failover over
 * the paper workloads on AGG, reporting completion, retry work, and
 * slowdown versus the fault-free run. Also demonstrates the watchdog:
 * a 100% loss plan ends in a diagnostic panic, not a hang.
 *
 * Emits BENCH_faults.json (one row per scenario) next to the table.
 */

#include "bench_util.hh"

#include <fstream>

#include "sim/log.hh"

using namespace pimdsm;
using namespace pimdsm::bench;

namespace
{

struct Scenario
{
    std::string app;
    double drop = 0.0;
    bool death = false;
    bool completed = false;
    std::string failure;
    RunResult result;
};

double
counter(const RunResult &r, const std::string &name)
{
    const auto it = r.counters.find(name);
    return it == r.counters.end() ? 0.0 : it->second;
}

Scenario
runScenario(const std::string &app, double drop, bool death,
            Tick death_tick)
{
    Scenario s;
    s.app = app;
    s.drop = drop;
    s.death = death;

    auto wl = makeWorkload(app, 1);
    BuildSpec spec;
    spec.arch = ArchKind::Agg;
    spec.threads = std::getenv("PIMDSM_QUICK") ? 4 : 8;
    spec.pressure = 0.25;
    spec.dRatio = 2; // >= 2 D-nodes, so one can die
    MachineConfig cfg = buildConfig(*wl, spec);
    cfg.faults.setUniformDropRate(drop);
    cfg.faults.seed = 0x5eedull;
    if (death) {
        cfg.faults.deaths.push_back(
            DNodeDeath{death_tick, static_cast<NodeId>(cfg.numPNodes)});
    }

    warnResetForTest();
    try {
        s.result = runWorkload(cfg, *wl);
        s.completed = true;
    } catch (const PanicError &e) {
        // Keep the first line of the watchdog diagnostic as evidence.
        std::string what = e.what();
        s.failure = what.substr(0, what.find('\n'));
    }
    warnResetForTest();
    return s;
}

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    for (char c : s) {
        if (c == '"' || c == '\\')
            out += '\\';
        out += c;
    }
    return out;
}

} // namespace

int
main()
{
    banner("Fault campaign: lossy mesh + D-node failover (AGG)",
           "retries recover <=5% loss with modest slowdown; a dead "
           "D-node fails over onto the survivors; total loss trips "
           "the watchdog");

    const std::vector<double> drops = {0.0, 0.01, 0.05};
    std::vector<Scenario> rows;

    for (const std::string &app : benchApps()) {
        Tick clean_ticks = 0;
        for (double drop : drops) {
            rows.push_back(runScenario(app, drop, false, 0));
            if (drop == 0.0)
                clean_ticks = rows.back().result.totalTicks;
        }
        // Mid-run death of the first D-node, halfway into the clean
        // run's schedule.
        rows.push_back(runScenario(app, 0.0, true, clean_ticks / 2));
    }
    // Watchdog demonstration: nothing gets through, the machine must
    // diagnose rather than hang.
    rows.push_back(runScenario(benchApps().front(), 1.0, false, 0));

    TablePrinter t({"app", "drop", "death", "completed", "Mcycles",
                    "slowdown", "retries", "net drops", "failover"});
    std::map<std::string, double> clean;
    for (const Scenario &s : rows) {
        if (s.drop == 0.0 && !s.death && s.completed)
            clean[s.app] = static_cast<double>(s.result.totalTicks);
        const double base = clean.count(s.app) ? clean[s.app] : 0.0;
        t.addRow({s.app, TablePrinter::num(s.drop),
                  s.death ? "yes" : "no",
                  s.completed ? "yes" : s.failure.substr(0, 24),
                  s.completed
                      ? TablePrinter::num(s.result.totalTicks / 1e6)
                      : "-",
                  s.completed && base > 0
                      ? TablePrinter::num(s.result.totalTicks / base)
                      : "-",
                  TablePrinter::num(counter(s.result, "fault.retries")),
                  TablePrinter::num(counter(s.result, "fault.net.drop")),
                  s.completed && s.death
                      ? TablePrinter::num(s.result.failoverTicks / 1e6) +
                            " Mcyc"
                      : "-"});
    }
    t.print(std::cout);

    std::ofstream js("BENCH_faults.json");
    js << "[\n";
    for (std::size_t i = 0; i < rows.size(); ++i) {
        const Scenario &s = rows[i];
        const double base = clean.count(s.app) ? clean[s.app] : 0.0;
        js << "  {\"app\": \"" << s.app << "\", \"drop_rate\": "
           << s.drop << ", \"dnode_death\": "
           << (s.death ? "true" : "false") << ", \"completed\": "
           << (s.completed ? "true" : "false");
        if (s.completed) {
            js << ", \"total_ticks\": " << s.result.totalTicks
               << ", \"slowdown\": "
               << (base > 0 ? s.result.totalTicks / base : 1.0)
               << ", \"retries\": "
               << counter(s.result, "fault.retries")
               << ", \"net_drops\": "
               << counter(s.result, "fault.net.drop")
               << ", \"failovers\": " << s.result.failovers
               << ", \"failover_ticks\": " << s.result.failoverTicks;
        } else {
            js << ", \"failure\": \"" << jsonEscape(s.failure) << "\"";
        }
        js << "}" << (i + 1 < rows.size() ? "," : "") << "\n";
    }
    js << "]\n";
    std::cout << "\nwrote BENCH_faults.json (" << rows.size()
              << " scenarios)\n";
    return 0;
}
