/**
 * @file
 * Fault campaign: sweep the fault domains over the paper workloads on
 * AGG — lossy mesh, mid-run D-node and P-node fail-stop deaths, a
 * permanent link death (detour routing), and a timed partition that
 * heals (blocked messages queue and drain) — reporting completion,
 * retry work, and slowdown versus the fault-free run. Also
 * demonstrates the watchdog: a 100% loss plan ends in a structured
 * diagnostic panic, not a hang, and the stuck-transaction list is
 * serialized into the failure row.
 *
 * Emits BENCH_faults.json (one row per scenario) next to the table.
 */

#include "bench_util.hh"

#include <fstream>

#include "proto/stuck.hh"
#include "sim/log.hh"

using namespace pimdsm;
using namespace pimdsm::bench;

namespace
{

struct Scenario
{
    std::string app;
    /** clean | drop | dnode_death | pnode_death | link_death |
     *  partition | wedge */
    std::string kind;
    double drop = 0.0;
    bool completed = false;
    std::string failure;
    /** Structured watchdog capture (failure rows only). */
    std::vector<StuckTxn> stuck;
    std::size_t partitionBlocked = 0;
    RunResult result;
};

double
counter(const RunResult &r, const std::string &name)
{
    const auto it = r.counters.find(name);
    return it == r.counters.end() ? 0.0 : it->second;
}

Scenario
runScenario(const std::string &app, const std::string &kind,
            double drop, Tick fault_tick)
{
    Scenario s;
    s.app = app;
    s.kind = kind;
    s.drop = drop;

    auto wl = makeWorkload(app, 1);
    BuildSpec spec;
    spec.arch = ArchKind::Agg;
    spec.threads = std::getenv("PIMDSM_QUICK") ? 4 : 8;
    spec.pressure = 0.25;
    spec.dRatio = 2; // >= 2 D-nodes, so one can die
    MachineConfig cfg = buildConfig(*wl, spec);
    cfg.faults.seed = 0x5eedull;
    if (kind == "drop" || kind == "wedge") {
        cfg.faults.setUniformDropRate(drop);
    } else if (kind == "dnode_death") {
        cfg.faults.deaths.push_back(
            DNodeDeath{fault_tick, static_cast<NodeId>(cfg.numPNodes)});
    } else if (kind == "pnode_death") {
        cfg.faults.pnodeDeaths.push_back(PNodeDeath{fault_tick, 1});
    } else if (kind == "link_death") {
        // One permanent east-link death in the corner: the mesh stays
        // connected and every affected route detours.
        cfg.faults.linkDeaths.push_back(LinkDeath{fault_tick, 0, 0, 0});
    } else if (kind == "partition") {
        // Full vertical cut between columns 0 and 1; heals after an
        // equal interval, so queued messages drain and the run
        // completes.
        Partition part;
        part.tick = fault_tick;
        part.healTick = fault_tick * 2;
        for (int y = 0; y < cfg.net.meshY; ++y)
            part.cut.push_back(LinkRef{0, y, 0});
        cfg.faults.partitions.push_back(part);
    }
    cfg.validate();

    warnResetForTest();
    try {
        s.result = runWorkload(cfg, *wl);
        s.completed = true;
    } catch (const WatchdogError &e) {
        // Keep the first line as the headline and the structured
        // stuck list as evidence.
        std::string what = e.what();
        s.failure = what.substr(0, what.find('\n'));
        s.stuck = e.stuck;
        s.partitionBlocked = e.partitionBlocked;
    } catch (const PanicError &e) {
        std::string what = e.what();
        s.failure = what.substr(0, what.find('\n'));
    }
    warnResetForTest();
    return s;
}

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    for (char c : s) {
        if (c == '"' || c == '\\')
            out += '\\';
        out += c;
    }
    return out;
}

void
writeStuckJson(std::ostream &os, const std::vector<StuckTxn> &stuck)
{
    os << ", \"stuck\": [";
    for (std::size_t i = 0; i < stuck.size(); ++i) {
        const StuckTxn &t = stuck[i];
        os << (i ? ", " : "") << "{\"kind\": \"" << t.kind
           << "\", \"node\": " << t.node << ", \"line\": " << t.line
           << ", \"state\": \"" << t.state
           << "\", \"retries\": " << t.retries
           << ", \"acks_expected\": " << t.acksExpected
           << ", \"acks_received\": " << t.acksReceived
           << ", \"issue_tick\": " << t.issueTick
           << ", \"last_progress_tick\": " << t.lastProgressTick
           << "}";
    }
    os << "]";
}

} // namespace

int
main()
{
    banner("Fault campaign: fault domains on AGG",
           "retries recover <=5% loss; dead D-/P-nodes fail over onto "
           "survivors; a dead link detours; a healed partition drains; "
           "total loss trips the structured watchdog");

    const std::vector<double> drops = {0.0, 0.01, 0.05};
    std::vector<Scenario> rows;

    for (const std::string &app : benchApps()) {
        Tick clean_ticks = 0;
        for (double drop : drops) {
            rows.push_back(runScenario(
                app, drop == 0.0 ? "clean" : "drop", drop, 0));
            if (drop == 0.0)
                clean_ticks = rows.back().result.totalTicks;
        }
        // Structural campaigns, anchored to the clean run's schedule:
        // deaths halfway in, the partition cut over the middle third.
        rows.push_back(
            runScenario(app, "dnode_death", 0.0, clean_ticks / 2));
        rows.push_back(
            runScenario(app, "pnode_death", 0.0, clean_ticks / 2));
        rows.push_back(
            runScenario(app, "link_death", 0.0, clean_ticks / 2));
        rows.push_back(
            runScenario(app, "partition", 0.0, clean_ticks / 3));
    }
    // Watchdog demonstration: nothing gets through, the machine must
    // diagnose rather than hang.
    rows.push_back(runScenario(benchApps().front(), "wedge", 1.0, 0));

    TablePrinter t({"app", "scenario", "completed", "Mcycles",
                    "slowdown", "retries", "blocked", "failover"});
    std::map<std::string, double> clean;
    for (const Scenario &s : rows) {
        if (s.kind == "clean" && s.completed)
            clean[s.app] = static_cast<double>(s.result.totalTicks);
        const double base = clean.count(s.app) ? clean[s.app] : 0.0;
        const Tick fo_ticks =
            s.result.failoverTicks + s.result.pnodeFailoverTicks;
        t.addRow({s.app,
                  s.kind == "drop"
                      ? "drop " + TablePrinter::num(s.drop)
                      : s.kind,
                  s.completed ? "yes" : s.failure.substr(0, 24),
                  s.completed
                      ? TablePrinter::num(s.result.totalTicks / 1e6)
                      : "-",
                  s.completed && base > 0
                      ? TablePrinter::num(s.result.totalTicks / base)
                      : "-",
                  TablePrinter::num(counter(s.result, "fault.retries")),
                  TablePrinter::num(
                      counter(s.result, "fault.net.partition_blocked")),
                  s.completed && fo_ticks > 0
                      ? TablePrinter::num(fo_ticks / 1e6) + " Mcyc"
                      : "-"});
    }
    t.print(std::cout);

    std::ofstream js("BENCH_faults.json");
    js << "[\n";
    for (std::size_t i = 0; i < rows.size(); ++i) {
        const Scenario &s = rows[i];
        const double base = clean.count(s.app) ? clean[s.app] : 0.0;
        js << "  {\"app\": \"" << s.app << "\", \"scenario\": \""
           << s.kind << "\", \"drop_rate\": " << s.drop
           << ", \"completed\": " << (s.completed ? "true" : "false");
        if (s.completed) {
            js << ", \"total_ticks\": " << s.result.totalTicks
               << ", \"slowdown\": "
               << (base > 0 ? s.result.totalTicks / base : 1.0)
               << ", \"retries\": "
               << counter(s.result, "fault.retries")
               << ", \"net_drops\": "
               << counter(s.result, "fault.net.drop")
               << ", \"link_deaths\": "
               << counter(s.result, "fault.net.link_deaths")
               << ", \"partition_blocked\": "
               << counter(s.result, "fault.net.partition_blocked")
               << ", \"failovers\": " << s.result.failovers
               << ", \"failover_ticks\": " << s.result.failoverTicks
               << ", \"pnode_failovers\": " << s.result.pnodeFailovers
               << ", \"pnode_failover_ticks\": "
               << s.result.pnodeFailoverTicks;
        } else {
            js << ", \"failure\": \"" << jsonEscape(s.failure)
               << "\", \"partition_blocked\": " << s.partitionBlocked;
            writeStuckJson(js, s.stuck);
        }
        js << "}" << (i + 1 < rows.size() ? "," : "") << "\n";
    }
    js << "]\n";
    std::cout << "\nwrote BENCH_faults.json (" << rows.size()
              << " scenarios)\n";
    return 0;
}
