/**
 * @file
 * Table 1: measured uncontended round-trip latency of every level of
 * the memory hierarchy on a paper-sized (32-thread) machine, next to
 * the values the paper reports.
 */

#include "bench_util.hh"

#include "machine/machine.hh"

using namespace pimdsm;
using namespace pimdsm::bench;

namespace
{

MachineConfig
cfg32(ArchKind arch)
{
    MachineConfig cfg = makeBaseConfig(arch);
    cfg.pNodeMemBytes = 1 << 20;
    cfg.dNodeMemBytes = 1 << 20;
    return cfg;
}

Tick
measure(Machine &m, NodeId n, Addr a, bool write = false)
{
    const Tick start = m.eq().curTick();
    Tick done = 0;
    m.compute(n)->access(a, write,
                         [&](Tick t, ReadService) { done = t; });
    m.eq().run();
    return done - start;
}

} // namespace

int
main()
{
    banner("Table 1: uncontended round-trip latencies (CPU cycles)",
           "L1 3, L2 6, local memory 37/57, remote 2-hop 298, remote "
           "3-hop 383");

    TablePrinter t({"level", "paper", "measured", "notes"});
    const Addr base = 1ull << 20;

    {
        Machine m(cfg32(ArchKind::Agg));
        measure(m, 0, base); // warm caches + local memory
        t.addRow({"on-chip L1", "3",
                  TablePrinter::num(measure(m, 0, base), 0),
                  "fully pipelined"});
        m.compute(0)->l1().invalidateAll();
        t.addRow({"on-chip L2", "6",
                  TablePrinter::num(measure(m, 0, base), 0), ""});
        m.compute(0)->l1().invalidateAll();
        m.compute(0)->l2().invalidateAll();
        t.addRow({"local memory (on-chip)", "37",
                  TablePrinter::num(measure(m, 0, base), 0),
                  "tagged memory hit"});
    }

    {
        Machine m(cfg32(ArchKind::Numa));
        measure(m, 0, base); // home at node 0
        double sum = 0;
        int n = 0;
        for (NodeId r : {1, 5, 12, 18, 27, 31}) {
            sum += static_cast<double>(
                measure(m, r, base + 128 * (n + 1)));
            ++n;
        }
        t.addRow({"remote memory, 2-hop", "298",
                  TablePrinter::num(sum / n, 0),
                  "NUMA, averaged over distances"});

        sum = 0;
        n = 0;
        for (NodeId owner : {3, 9, 22}) {
            const Addr line = base + 4096 * (n + 5);
            measure(m, 0, line);
            measure(m, owner, line, true);
            sum += static_cast<double>(
                measure(m, owner == 3 ? 28 : 6, line));
            ++n;
        }
        t.addRow({"remote memory, 3-hop", "383",
                  TablePrinter::num(sum / n, 0),
                  "NUMA, dirty at third node"});
    }

    {
        Machine m(cfg32(ArchKind::Agg));
        const Tick two_hop = measure(m, 9, base);
        t.addRow({"AGG remote 2-hop (software)", "-",
                  TablePrinter::num(two_hop, 0),
                  "D-node software handlers add latency"});
    }

    const MachineConfig cfg = makeBaseConfig(ArchKind::Agg);
    t.addRow({"memory bandwidth", "32 B/cycle",
              TablePrinter::num(cfg.mem.bandwidthBytesPerTick, 0) +
                  " B/cycle",
              "line transfer occupies " +
                  TablePrinter::num(
                      ceilDiv(cfg.mem.lineBytes,
                              cfg.mem.bandwidthBytesPerTick), 0) +
                  " cycles"});
    t.addRow({"write buffer", "32-entry",
              std::to_string(cfg.proc.writeBufferEntries) + "-entry",
              ""});
    t.addRow({"load buffer", "16-entry",
              std::to_string(cfg.proc.maxOutstandingLoads) + "-entry",
              ""});
    t.print(std::cout);
    return 0;
}
