/**
 * @file
 * Table 3: the applications — problem sizes, footprints, per-app
 * cache sizes, and the per-thread operation mix the generators
 * produce (the scaled stand-ins for the paper's binaries; see
 * DESIGN.md section 5).
 */

#include "bench_util.hh"

using namespace pimdsm;
using namespace pimdsm::bench;

int
main()
{
    banner("Table 3: applications and problem sizes",
           "SPLASH-2 (8K/32K caches), SPEC95 swim 32K/128K, tomcatv "
           "64K/256K, TPC-D Q3 64K/512K");

    TablePrinter t({"app", "footprint", "L1", "L2", "phases",
                    "ops/thread", "loads", "stores", "sync"});

    const int threads = 8;
    for (const auto &name : paperWorkloadNames()) {
        auto wl = makeWorkload(name);

        std::uint64_t ops = 0, loads = 0, stores = 0, sync = 0;
        for (int phase = 0; phase < wl->numPhases(); ++phase) {
            auto s = wl->makeStream(phase, 0, threads);
            Op op;
            while (s->next(op)) {
                ++ops;
                switch (op.kind) {
                  case Op::Kind::Load:
                    ++loads;
                    break;
                  case Op::Kind::Store:
                    ++stores;
                    break;
                  case Op::Kind::Lock:
                  case Op::Kind::Unlock:
                  case Op::Kind::Barrier:
                    ++sync;
                    break;
                  default:
                    break;
                }
            }
        }

        t.addRow({name,
                  TablePrinter::num(wl->footprintBytes() /
                                        (1024.0 * 1024.0), 1) + " MB",
                  std::to_string(wl->l1Bytes() / 1024) + "K",
                  std::to_string(wl->l2Bytes() / 1024) + "K",
                  std::to_string(wl->numPhases()),
                  TablePrinter::num(ops / 1e3, 0) + "k",
                  TablePrinter::num(loads / 1e3, 0) + "k",
                  TablePrinter::num(stores / 1e3, 0) + "k",
                  std::to_string(sync)});
    }
    t.print(std::cout);
    std::cout << "\n(per-thread op counts for thread 0 of " << threads
              << "; problem sizes are the scale=1 defaults — see "
                 "DESIGN.md for the scaling rationale)\n";
    return 0;
}
