/**
 * @file
 * Figure 10(a): static vs dynamic reconfiguration on Dbase. The hash
 * phase runs best with many D-nodes (16&16), the join phase with many
 * P-nodes (28&4); dynamic reconfiguration between the phases captures
 * both at the cost of the modeled Reconf overhead.
 */

#include "bench_util.hh"

using namespace pimdsm;
using namespace pimdsm::bench;

namespace
{

RunResult
runConfig(const Workload &wl, int p, int d, int fat_d,
          const RunOptions &opts)
{
    BuildSpec spec;
    spec.arch = ArchKind::Agg;
    spec.threads = p;
    spec.dNodes = d;
    spec.pressure = 0.75;
    spec.reconfigurable = true;
    MachineConfig cfg = buildConfig(wl, spec);
    // The machine is built from "fatter" nodes (Section 2.3): every
    // node carries enough DRAM that even the join-friendly partition
    // (fat_d D-nodes) can back the footprint. When more nodes act as
    // D-nodes, part of that memory goes unused.
    const std::uint64_t total_d =
        static_cast<std::uint64_t>(wl.footprintBytes() / 0.75) / 2;
    cfg.dNodeMemBytes =
        ceilDiv(total_d / fat_d, cfg.pageBytes) * cfg.pageBytes;
    return runWorkload(cfg, wl, opts);
}

} // namespace

int
main()
{
    banner("Figure 10(a): Dbase static vs dynamic reconfiguration",
           "dynamic (16&16 hash -> 28&4 join) beats the best static "
           "configuration by ~14%");

    const bool quick = std::getenv("PIMDSM_QUICK") != nullptr;
    const int total = quick ? 16 : 32;
    const int hash_p = total / 2;           // 16&16 (8&8 quick)
    const int join_p = total - total / 8;   // 28&4  (14&2 quick)

    DbaseWorkload wl(1, false);

    const int fat_d = total - join_p;
    const RunResult static_hash =
        runConfig(wl, hash_p, total - hash_p, fat_d, {});
    const RunResult static_join =
        runConfig(wl, join_p, total - join_p, fat_d, {});

    RunOptions dyn_opts;
    // Dbase phases: 0 init, 1 hash, 2 join. Reconfigure before join.
    dyn_opts.reconfig.push_back(
        ReconfigStep{2, join_p, total - join_p});
    const RunResult dynamic =
        runConfig(wl, hash_p, total - hash_p, fat_d, dyn_opts);

    // Extension: the OS-initiated policy that resizes on observed
    // D-node utilization instead of an explicit plan (Section 2.3).
    RunOptions auto_opts;
    auto_opts.autoReconfig = true;
    const RunResult autodyn =
        runConfig(wl, hash_p, total - hash_p, fat_d, auto_opts);

    const double base = static_cast<double>(static_hash.totalTicks);
    auto bar = [&](const std::string &label, const RunResult &r,
                   Tick reconf) {
        const double norm = r.totalTicks / base;
        auto segs = timeSegments(r, norm - reconf / base);
        segs.push_back(reconf / base);
        return Bar{label, segs};
    };

    std::vector<Bar> bars;
    bars.push_back(bar(std::to_string(hash_p) + "&" +
                           std::to_string(total - hash_p) + " static",
                       static_hash, 0));
    bars.push_back(bar(std::to_string(join_p) + "&" +
                           std::to_string(total - join_p) + " static",
                       static_join, 0));
    bars.push_back(bar("dynamic", dynamic, dynamic.reconfigTicks));
    bars.push_back(bar("auto (OS policy)", autodyn,
                       autodyn.reconfigTicks));
    printBars(std::cout, "Fig 10(a) — Dbase (vs 16&16 static = 1.0)",
              {"Memory", "Processor", "Reconf"}, bars);

    TablePrinter t({"config", "total Mcycles", "vs best static",
                    "reconfig overhead"});
    const double best_static = static_cast<double>(
        std::min(static_hash.totalTicks, static_join.totalTicks));
    auto row = [&](const std::string &label, const RunResult &r) {
        t.addRow({label, TablePrinter::num(r.totalTicks / 1e6),
                  TablePrinter::num(r.totalTicks / best_static),
                  TablePrinter::num(r.reconfigTicks / 1e6)});
    };
    row("static hash-friendly", static_hash);
    row("static join-friendly", static_join);
    row("dynamic", dynamic);
    row("auto (OS policy)", autodyn);
    t.print(std::cout);
    std::cout << "auto policy reconfigured " << autodyn.autoReconfigs
              << " time(s)\n";

    std::cout << "\nper-phase durations (Mcycles):\n";
    TablePrinter pt({"config", "init", "hash", "join"});
    auto prow = [&](const std::string &label, const RunResult &r) {
        std::vector<std::string> cells = {label};
        for (const auto &p : r.phases)
            cells.push_back(TablePrinter::num(p.duration() / 1e6));
        pt.addRow(cells);
    };
    prow("static hash-friendly", static_hash);
    prow("static join-friendly", static_join);
    prow("dynamic", dynamic);
    prow("auto (OS policy)", autodyn);
    pt.print(std::cout);

    std::cout << "\nD-node utilization: hash-friendly "
              << TablePrinter::pct(static_hash.dNodeUtilization)
              << ", join-friendly "
              << TablePrinter::pct(static_join.dNodeUtilization)
              << ", dynamic "
              << TablePrinter::pct(dynamic.dNodeUtilization) << "\n";
    if (std::getenv("PIMDSM_VERBOSE")) {
        std::cout << "join-friendly counters:\n";
        for (const auto &[k, v] : static_join.counters)
            std::cout << "  " << k << " = " << v << "\n";
    }
    return 0;
}
