/**
 * @file
 * Figure 7: aggregated read latency (sum over all reads, whether or
 * not the processor stalled), decomposed into FLC / SLC / Memory /
 * 2Hop / 3Hop service levels, normalized to NUMA.
 */

#include "bench_util.hh"

using namespace pimdsm;
using namespace pimdsm::bench;

namespace
{

std::vector<double>
latencySegments(const RunResult &r, double scale)
{
    std::vector<double> segs;
    for (int i = 0; i < ReadLatencyStats::kNum; ++i)
        segs.push_back(r.reads.totalLatency[i] * scale);
    return segs;
}

} // namespace

int
main()
{
    banner("Figure 7: aggregated read latency by service level",
           "AGG/COMA convert NUMA's 2Hop time into Memory time; COMA "
           "shows more 3Hop than AGG (home displacements)");

    const int threads = paperThreads();

    for (const auto &app : benchApps()) {
        auto wl = makeWorkload(app);
        const int red = reducedDRatio(app);

        const RunResult numa =
            run(*wl, ArchKind::Numa, threads, 0.75);
        const double base =
            static_cast<double>(numa.reads.totalAllLatency());

        std::vector<NamedRun> runs;
        runs.push_back({"NUMA", numa});
        runs.push_back(
            {"COMA75", run(*wl, ArchKind::Coma, threads, 0.75)});
        runs.push_back(
            {"1/1AGG75", run(*wl, ArchKind::Agg, threads, 0.75, 1)});
        runs.push_back({"1/" + std::to_string(red) + "AGG75",
                        run(*wl, ArchKind::Agg, threads, 0.75, red)});

        std::vector<Bar> bars;
        for (const auto &nr : runs)
            bars.push_back(
                {nr.label, latencySegments(nr.result, 1.0 / base)});
        printBars(std::cout,
                  "Fig 7 — " + app + " (total read latency vs NUMA)",
                  {"FLC", "SLC", "Memory", "2Hop", "3Hop"}, bars);

        TablePrinter t({"config", "FLC", "SLC", "Memory", "2Hop",
                        "3Hop", "reads"});
        for (const auto &nr : runs) {
            std::vector<std::string> row = {nr.label};
            for (int i = 0; i < ReadLatencyStats::kNum; ++i) {
                row.push_back(TablePrinter::pct(
                    nr.result.reads.totalLatency[i] /
                    static_cast<double>(
                        nr.result.reads.totalAllLatency())));
            }
            row.push_back(TablePrinter::num(
                nr.result.reads.totalAllCount() / 1e3, 0) + "k");
            t.addRow(row);
        }
        t.print(std::cout);
        std::cout << "\n";
    }
    return 0;
}
