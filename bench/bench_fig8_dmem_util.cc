/**
 * @file
 * Figure 8: D-node memory utilization. Classifies every memory line in
 * the machine as Dirty-in-P-Node / Shared-in-P-Node / D-Node-Only at
 * 25%, 50% and 75% memory pressure, normalized so the total D-node
 * storage is 100 (the paper's dotted line).
 */

#include "bench_util.hh"

using namespace pimdsm;
using namespace pimdsm::bench;

int
main()
{
    banner("Figure 8: D-node memory line census (AGG, reduced ratio)",
           "D-Node-Only ~50% of D storage at 75% pressure, ~25% at "
           "50%, tiny at 25%; large Dirty-in-P fraction");

    const int threads = paperThreads();

    TablePrinter t({"app", "pressure", "DirtyInP", "SharedInP",
                    "DNodeOnly", "unused D", "SharedList reused"});

    for (const auto &app : benchApps()) {
        auto wl = makeWorkload(app);
        const int red = reducedDRatio(app);

        std::vector<Bar> bars;
        for (double pressure : {0.75, 0.50, 0.25}) {
            const RunResult r =
                run(*wl, ArchKind::Agg, threads, pressure, red);
            const double cap =
                static_cast<double>(r.census.dNodeCapacityLines);
            const double scale = 100.0 / cap;

            const double dirty = r.census.dirtyInPNode * scale;
            const double shared = r.census.sharedInPNode * scale;
            const double donly = r.census.dNodeOnly * scale;
            // Unused D storage = capacity - (D-Node-Only + home
            // copies of shared lines); negative => SharedList reuse.
            const double used_slots =
                r.census.dNodeUsedLines * scale;
            const double unused = 100.0 - used_slots;
            const double reuses =
                r.counters.count("dnode.sharedlist_reuse")
                    ? r.counters.at("dnode.sharedlist_reuse")
                    : 0.0;

            const std::string label =
                "AGG" + std::to_string(static_cast<int>(
                            pressure * 100));
            bars.push_back({label, {dirty, shared, donly}});
            t.addRow({app, label, TablePrinter::num(dirty, 1),
                      TablePrinter::num(shared, 1),
                      TablePrinter::num(donly, 1),
                      TablePrinter::num(unused, 1),
                      TablePrinter::num(reuses, 0)});
        }
        printBars(std::cout,
                  "Fig 8 — " + app +
                      " (lines per 100 D-node storage slots; bar "
                      "beyond 1.0 exceeds D capacity)",
                  {"DirtyInP", "SharedInP", "DNodeOnly"}, bars, 100.0);
    }

    std::cout << "Census summary (normalized to 100 D-node slots):\n";
    t.print(std::cout);
    return 0;
}
