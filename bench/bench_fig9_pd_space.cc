/**
 * @file
 * Figure 9: execution time across the (P-node, D-node) design space,
 * per application, holding the problem size and the total D-node
 * memory fixed as nodes are added (AGG at 75% pressure, normalized to
 * the 2P & 2D configuration).
 */

#include "bench_util.hh"

using namespace pimdsm;
using namespace pimdsm::bench;

int
main()
{
    banner("Figure 9: execution time over the (P, D) design space",
           "optimum varies per app: Dbase high-P/high-D, Swim/Tomcatv "
           "high-P/low-D, Radix medium, others high-P/medium-D");

    const bool quick = std::getenv("PIMDSM_QUICK") != nullptr;
    const std::vector<int> p_counts =
        quick ? std::vector<int>{2, 4, 8} :
                std::vector<int>{2, 4, 8, 16};
    const std::vector<int> d_counts =
        quick ? std::vector<int>{1, 2, 4} :
                std::vector<int>{1, 2, 4, 8, 16};

    for (const auto &app : benchApps()) {
        auto wl = makeWorkload(app);

        // Reference configuration: 2 P-nodes, 2 D-nodes, AGG75. Its
        // per-P-node memory and total D memory stay fixed across the
        // design space (Section 4.2).
        BuildSpec ref;
        ref.arch = ArchKind::Agg;
        ref.threads = 2;
        ref.dNodes = 2;
        ref.pressure = 0.75;
        const MachineConfig ref_cfg = buildConfig(*wl, ref);
        const std::uint64_t p_mem = ref_cfg.pNodeMemBytes;
        const std::uint64_t total_d_mem = 2 * ref_cfg.dNodeMemBytes;

        const double base = static_cast<double>(
            runWorkload(ref_cfg, *wl).totalTicks);

        std::vector<std::string> headers = {"P \\ D"};
        for (int d : d_counts)
            headers.push_back(std::to_string(d) + "D");
        TablePrinter t(std::move(headers));

        double best = 1e30, best_ce = 1e30;
        int best_p = 0, best_d = 0, ce_p = 0, ce_d = 0;
        for (int p : p_counts) {
            std::vector<std::string> row = {std::to_string(p) + "P"};
            for (int d : d_counts) {
                BuildSpec spec = ref;
                spec.threads = p;
                spec.dNodes = d;
                MachineConfig cfg = buildConfig(*wl, spec);
                cfg.pNodeMemBytes = p_mem;
                cfg.dNodeMemBytes =
                    ceilDiv(total_d_mem / d, cfg.pageBytes) *
                    cfg.pageBytes;
                const RunResult r = runWorkload(cfg, *wl);
                const double norm = r.totalTicks / base;
                row.push_back(TablePrinter::num(norm));
                if (r.totalTicks < best) {
                    best = static_cast<double>(r.totalTicks);
                    best_p = p;
                    best_d = d;
                }
                // Cost-effectiveness: time x chips (the paper argues
                // per-application optima in these terms).
                const double ce = norm * (p + d);
                if (ce < best_ce) {
                    best_ce = ce;
                    ce_p = p;
                    ce_d = d;
                }
            }
            t.addRow(std::move(row));
        }
        std::cout << "Fig 9 — " << app
                  << " (execution time / 2P&2D time; lower is "
                     "better)\n";
        t.print(std::cout);
        std::cout << "fastest: " << best_p << "P & " << best_d
                  << "D; most cost-effective (time x chips): " << ce_p
                  << "P & " << ce_d << "D\n\n";
    }
    return 0;
}
