/**
 * @file
 * Simulator self-performance: how fast does the simulator itself run?
 *
 * Three workloads exercise the kernel hot paths from different angles:
 *
 *  - "stress": raw scheduler churn on a bare EventQueue — a mixed
 *    near/far schedule distribution modeled on the machine's latencies
 *    (link hops, handler occupancies, rare far-future watchdogs). This
 *    isolates schedule/pop/callback dispatch cost.
 *  - "faults": a fault-campaign run (drops + retries + a D-node death)
 *    — the heaviest per-event protocol work.
 *  - "fig6": one Figure-6 point (fft on AGG at the paper's thread
 *    count) — the representative paper experiment.
 *
 * Each reports events executed, wall-clock seconds, events/second, and
 * process peak RSS. Emits BENCH_selfperf.json for CI trend tracking
 * (see .github/workflows/perf.yml) and tools/benchsweep.
 *
 * Usage: bench_selfperf [--quick] [--kernel=calendar|heap]
 * (--quick is implied by PIMDSM_QUICK; --kernel selects the scheduler
 * for the stress workload and the default for machine runs.)
 */

#include "bench_util.hh"

#include <chrono>
#include <cstdio>
#include <cstring>
#include <functional>
#include <fstream>
#include <string>
#include <vector>

#include <sys/resource.h>

#include "sim/event_queue.hh"
#include "sim/log.hh"
#include "sim/random.hh"

using namespace pimdsm;
using namespace pimdsm::bench;

namespace
{

struct SelfPerfRow
{
    std::string name;
    std::uint64_t events = 0;
    double wallSeconds = 0.0;
    double eventsPerSec = 0.0;
    long peakRssKb = 0;
};

long
peakRssKb()
{
    struct rusage ru{};
    getrusage(RUSAGE_SELF, &ru);
    return ru.ru_maxrss; // kilobytes on Linux
}

using Clock = std::chrono::steady_clock;

double
secondsSince(Clock::time_point t0)
{
    return std::chrono::duration<double>(Clock::now() - t0).count();
}

/**
 * Raw kernel churn: @p total events through a bare queue. The delay
 * distribution mirrors the simulated machine: mostly small constants
 * (hops, occupancies), a tail of medium memory/disk latencies, and
 * rare far-future timeouts that exercise the overflow path.
 */
SelfPerfRow
runStress(std::uint64_t total, EventQueue::KernelKind kind)
{
    EventQueue eq(kind);
    Rng rng(0x5e1f9e4full);
    std::uint64_t scheduled = 0;
    std::uint64_t fired = 0;

    auto delay = [&rng]() -> Tick {
        const std::uint64_t r = rng.nextBounded(1000);
        if (r < 700)
            return 1 + rng.nextBounded(16); // link hop / occupancy
        if (r < 950)
            return 20 + rng.nextBounded(400); // handler / memory
        if (r < 998)
            return 1000 + rng.nextBounded(11000); // disk page-in
        return 50000 + rng.nextBounded(200000); // watchdog horizon
    };

    // Self-replenishing load: each event reschedules itself (and
    // occasionally a sibling) until the budget is spent, holding a few
    // thousand events in flight like a busy machine does.
    std::function<void()> tick = [&] {
        ++fired;
        if (scheduled < total) {
            ++scheduled;
            eq.scheduleIn(delay(), [&tick] { tick(); });
        }
        if (scheduled < total && rng.chance(0.02)) {
            ++scheduled;
            eq.scheduleIn(delay(), [&tick] { tick(); });
        }
    };

    const auto t0 = Clock::now();
    constexpr std::uint64_t kSeedEvents = 4096;
    for (std::uint64_t i = 0; i < kSeedEvents && scheduled < total; ++i) {
        ++scheduled;
        eq.scheduleIn(delay(), [&tick] { tick(); });
    }
    eq.run();
    const double secs = secondsSince(t0);

    if (fired != scheduled)
        panic("stress workload lost events");

    SelfPerfRow row;
    row.name = "stress";
    row.events = fired;
    row.wallSeconds = secs;
    row.eventsPerSec = secs > 0 ? static_cast<double>(fired) / secs : 0;
    row.peakRssKb = peakRssKb();
    return row;
}

/** Fault campaign: drops + retries + one mid-run D-node death. */
SelfPerfRow
runFaultCampaign()
{
    auto wl = makeWorkload("fft", 1);
    BuildSpec spec;
    spec.arch = ArchKind::Agg;
    spec.threads = std::getenv("PIMDSM_QUICK") ? 4 : 8;
    spec.pressure = 0.25;
    spec.dRatio = 2;
    MachineConfig cfg = buildConfig(*wl, spec);
    cfg.faults.setUniformDropRate(0.05);
    cfg.faults.seed = 0x5eedull;
    cfg.faults.deaths.push_back(
        DNodeDeath{4000, static_cast<NodeId>(cfg.numPNodes)});

    warnResetForTest();
    const auto t0 = Clock::now();
    const RunResult r = runWorkload(cfg, *wl);
    const double secs = secondsSince(t0);
    warnResetForTest();

    SelfPerfRow row;
    row.name = "faults";
    row.events = static_cast<std::uint64_t>(
        r.counters.at("sim.events_executed"));
    row.wallSeconds = secs;
    row.eventsPerSec =
        secs > 0 ? static_cast<double>(row.events) / secs : 0;
    row.peakRssKb = peakRssKb();
    return row;
}

/** One Figure-6 point: fft on AGG at the paper's thread count. */
SelfPerfRow
runFig6Point()
{
    auto wl = makeWorkload("fft", 1);
    const RunResult r = run(*wl, ArchKind::Agg, paperThreads(), 0.25,
                            reducedDRatio("fft"));

    SelfPerfRow row;
    row.name = "fig6";
    row.events = static_cast<std::uint64_t>(
        r.counters.at("sim.events_executed"));
    row.peakRssKb = peakRssKb();
    return row;
}

} // namespace

int
main(int argc, char **argv)
{
    bool quick = std::getenv("PIMDSM_QUICK") != nullptr;
    EventQueue::KernelKind kind = EventQueue::defaultKind();
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--quick") == 0) {
            quick = true;
        } else if (std::strcmp(argv[i], "--kernel=heap") == 0) {
            kind = EventQueue::KernelKind::ReferenceHeap;
        } else if (std::strcmp(argv[i], "--kernel=calendar") == 0) {
            kind = EventQueue::KernelKind::Calendar;
        } else {
            std::cerr << "usage: bench_selfperf [--quick] "
                         "[--kernel=calendar|heap]\n";
            return 2;
        }
    }
    if (quick)
        setenv("PIMDSM_QUICK", "1", 1);
    EventQueue::setDefaultKind(kind);

    banner("Simulator self-performance",
           "simulator implementation metric (no paper analogue)");
    std::cout << "kernel: "
              << (kind == EventQueue::KernelKind::Calendar
                      ? "calendar"
                      : "reference-heap")
              << (quick ? " (quick)" : "") << "\n\n";

    std::vector<SelfPerfRow> rows;
    rows.push_back(runStress(quick ? 300'000 : 3'000'000, kind));
    // Machine runs re-time wall clock around the full experiment
    // runner, so they include machine construction.
    rows.push_back(runFaultCampaign());
    {
        const auto t0 = Clock::now();
        SelfPerfRow fig6 = runFig6Point();
        fig6.wallSeconds = secondsSince(t0);
        fig6.eventsPerSec =
            fig6.wallSeconds > 0
                ? static_cast<double>(fig6.events) / fig6.wallSeconds
                : 0;
        rows.push_back(fig6);
    }

    std::cout << "workload       events      wall(s)     events/sec"
                 "   peakRSS(MB)\n";
    for (const auto &r : rows) {
        std::printf("%-10s %10llu %10.3f %14.0f %10.1f\n",
                    r.name.c_str(),
                    static_cast<unsigned long long>(r.events),
                    r.wallSeconds, r.eventsPerSec,
                    static_cast<double>(r.peakRssKb) / 1024.0);
    }

    std::ofstream js("BENCH_selfperf.json");
    js << "{\n  \"bench\": \"selfperf\",\n  \"kernel\": \""
       << (kind == EventQueue::KernelKind::Calendar ? "calendar"
                                                    : "heap")
       << "\",\n  \"quick\": " << (quick ? "true" : "false")
       << ",\n  \"rows\": [\n";
    for (std::size_t i = 0; i < rows.size(); ++i) {
        const auto &r = rows[i];
        js << "    {\"workload\": \"" << r.name
           << "\", \"events\": " << r.events
           << ", \"wall_seconds\": " << r.wallSeconds
           << ", \"events_per_sec\": " << r.eventsPerSec
           << ", \"peak_rss_kb\": " << r.peakRssKb << "}"
           << (i + 1 < rows.size() ? "," : "") << "\n";
    }
    js << "  ]\n}\n";
    std::cout << "\nwrote BENCH_selfperf.json (" << rows.size()
              << " workloads)\n";
    return 0;
}
