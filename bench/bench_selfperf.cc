/**
 * @file
 * Simulator self-performance: how fast does the simulator itself run?
 *
 * Three workloads exercise the kernel hot paths from different angles:
 *
 *  - "stress": raw scheduler churn on a bare EventQueue — a mixed
 *    near/far schedule distribution modeled on the machine's latencies
 *    (link hops, handler occupancies, rare far-future watchdogs). This
 *    isolates schedule/pop/callback dispatch cost.
 *  - "faults": a fault-campaign run (drops + retries + a D-node death)
 *    — the heaviest per-event protocol work.
 *  - "fig6": one Figure-6 point (fft on AGG at the paper's thread
 *    count) — the representative paper experiment.
 *
 * A fourth group tracks sharded-kernel scaling: the fig6 point under
 * the windowed parallel kernel with the Region partition at 1/2/4/8
 * shards, plus a sharded variant of the stress churn (per-shard
 * queues under a ShardedEngine) at 1 and 4 shards. Worker threads are
 * capped at the host's core count; rows whose requested thread count
 * exceeded it are marked "capped" (a warning is printed, and the JSON
 * row records threads_requested/threads_used/capped). Sharded rows
 * also report the cross-shard message fraction and their speedup over
 * the matching 1-shard row.
 *
 * Each reports events executed, wall-clock seconds, events/second, and
 * per-workload peak RSS (the kernel's peak-RSS watermark is reset
 * between workloads via /proc/self/clear_refs, so rows are
 * independent; on kernels without clear_refs the value degrades to the
 * monotone process-wide peak). Emits BENCH_selfperf.json for CI trend
 * tracking (see .github/workflows/perf.yml) and tools/benchsweep.
 *
 * Usage: bench_selfperf [--quick] [--kernel=calendar|heap]
 *                       [--baseline PATH] [--drift F]
 *                       [--min-speedup F]
 * (--quick is implied by PIMDSM_QUICK; --kernel selects the scheduler
 * for the stress workload and the default for machine runs.
 * --baseline compares events/sec per workload against a committed
 * BENCH_selfperf.json and exits 1 on any slowdown beyond --drift
 * (default 0.25). --min-speedup requires stress_shards4 to beat
 * stress_shards1 by the given factor — skipped with a warning when
 * the row was thread-capped, since a host without the cores cannot
 * show parallel speedup. PIMDSM_PERF_WAIVE=1 downgrades either
 * failure to a warning for known-noisy hosts.)
 */

#include "bench_util.hh"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <functional>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <sys/resource.h>

#include "sim/event_queue.hh"
#include "sim/log.hh"
#include "sim/random.hh"
#include "sim/shard.hh"

using namespace pimdsm;
using namespace pimdsm::bench;

namespace
{

struct SelfPerfRow
{
    std::string name;
    std::uint64_t events = 0;
    double wallSeconds = 0.0;
    double eventsPerSec = 0.0;
    long peakRssKb = 0;
    // Sharded rows only (threadsRequested > 0).
    int threadsRequested = 0;
    int threadsUsed = 0;
    bool capped = false;
    double xshardFrac = -1.0;
    double speedupVsShards1 = 0.0;
};

/** Cap @p requested worker threads at the host's core count, warning
 *  (and marking the row) when the cap bites: an oversubscribed host
 *  cannot show honest parallel scaling. */
int
capThreads(int requested, SelfPerfRow &row)
{
    const int hw = static_cast<int>(
        std::max(1u, std::thread::hardware_concurrency()));
    row.threadsRequested = requested;
    row.threadsUsed = std::min(requested, hw);
    row.capped = row.threadsUsed < requested;
    if (row.capped) {
        std::cout << "warning: '" << row.name << "' wants " << requested
                  << " threads but the host has " << hw
                  << " core(s); running with " << row.threadsUsed
                  << " (row marked capped)\n";
    }
    return row.threadsUsed;
}

/**
 * Reset the kernel's peak-RSS watermark so the next peakRssKb() read
 * reflects only the workload run since this call. Writing "5" to
 * clear_refs sets VmHWM to the current VmRSS; a failure (no procfs,
 * old kernel) is harmless — rows then report the process-wide peak,
 * which is what this bench always reported before.
 */
void
resetPeakRss()
{
    std::ofstream f("/proc/self/clear_refs");
    if (f)
        f << "5";
}

long
peakRssKb()
{
    // Prefer VmHWM (resettable per workload); fall back to getrusage.
    std::ifstream st("/proc/self/status");
    std::string line;
    while (std::getline(st, line)) {
        if (line.rfind("VmHWM:", 0) == 0) {
            long kb = 0;
            if (std::sscanf(line.c_str(), "VmHWM: %ld kB", &kb) == 1)
                return kb;
        }
    }
    struct rusage ru{};
    getrusage(RUSAGE_SELF, &ru);
    return ru.ru_maxrss; // kilobytes on Linux
}

using Clock = std::chrono::steady_clock;

double
secondsSince(Clock::time_point t0)
{
    return std::chrono::duration<double>(Clock::now() - t0).count();
}

/**
 * Raw kernel churn: @p total events through a bare queue. The delay
 * distribution mirrors the simulated machine: mostly small constants
 * (hops, occupancies), a tail of medium memory/disk latencies, and
 * rare far-future timeouts that exercise the overflow path.
 */
SelfPerfRow
runStress(std::uint64_t total, EventQueue::KernelKind kind)
{
    resetPeakRss();
    EventQueue eq(kind);
    Rng rng(0x5e1f9e4full);
    std::uint64_t scheduled = 0;
    std::uint64_t fired = 0;

    auto delay = [&rng]() -> Tick {
        const std::uint64_t r = rng.nextBounded(1000);
        if (r < 700)
            return 1 + rng.nextBounded(16); // link hop / occupancy
        if (r < 950)
            return 20 + rng.nextBounded(400); // handler / memory
        if (r < 998)
            return 1000 + rng.nextBounded(11000); // disk page-in
        return 50000 + rng.nextBounded(200000); // watchdog horizon
    };

    // Self-replenishing load: each event reschedules itself (and
    // occasionally a sibling) until the budget is spent, holding a few
    // thousand events in flight like a busy machine does.
    std::function<void()> tick = [&] {
        ++fired;
        if (scheduled < total) {
            ++scheduled;
            eq.scheduleIn(delay(), [&tick] { tick(); });
        }
        if (scheduled < total && rng.chance(0.02)) {
            ++scheduled;
            eq.scheduleIn(delay(), [&tick] { tick(); });
        }
    };

    const auto t0 = Clock::now();
    constexpr std::uint64_t kSeedEvents = 4096;
    for (std::uint64_t i = 0; i < kSeedEvents && scheduled < total; ++i) {
        ++scheduled;
        eq.scheduleIn(delay(), [&tick] { tick(); });
    }
    eq.run();
    const double secs = secondsSince(t0);

    if (fired != scheduled)
        panic("stress workload lost events");

    SelfPerfRow row;
    row.name = "stress";
    row.events = fired;
    row.wallSeconds = secs;
    row.eventsPerSec = secs > 0 ? static_cast<double>(fired) / secs : 0;
    row.peakRssKb = peakRssKb();
    return row;
}

/** Fault campaign: drops + retries + one mid-run D-node death. */
SelfPerfRow
runFaultCampaign()
{
    resetPeakRss();
    auto wl = makeWorkload("fft", 1);
    BuildSpec spec;
    spec.arch = ArchKind::Agg;
    spec.threads = std::getenv("PIMDSM_QUICK") ? 4 : 8;
    spec.pressure = 0.25;
    spec.dRatio = 2;
    MachineConfig cfg = buildConfig(*wl, spec);
    cfg.faults.setUniformDropRate(0.05);
    cfg.faults.seed = 0x5eedull;
    cfg.faults.deaths.push_back(
        DNodeDeath{4000, static_cast<NodeId>(cfg.numPNodes)});

    warnResetForTest();
    const auto t0 = Clock::now();
    const RunResult r = runWorkload(cfg, *wl);
    const double secs = secondsSince(t0);
    warnResetForTest();

    SelfPerfRow row;
    row.name = "faults";
    row.events = static_cast<std::uint64_t>(
        r.counters.at("sim.events_executed"));
    row.wallSeconds = secs;
    row.eventsPerSec =
        secs > 0 ? static_cast<double>(row.events) / secs : 0;
    row.peakRssKb = peakRssKb();
    return row;
}

/** One Figure-6 point: fft on AGG at the paper's thread count. */
SelfPerfRow
runFig6Point()
{
    resetPeakRss();
    auto wl = makeWorkload("fft", 1);
    const RunResult r = run(*wl, ArchKind::Agg, paperThreads(), 0.25,
                            reducedDRatio("fft"));

    SelfPerfRow row;
    row.name = "fig6";
    row.events = static_cast<std::uint64_t>(
        r.counters.at("sim.events_executed"));
    row.peakRssKb = peakRssKb();
    return row;
}

/**
 * The fig6 point under the windowed parallel kernel with the Region
 * partition (contiguous mesh blocks — the production scheme, with the
 * lowest cross-shard fraction).
 */
SelfPerfRow
runShardedFig6(int shards)
{
    resetPeakRss();
    SelfPerfRow row;
    row.name = "fig6_region_shards" + std::to_string(shards);
    const int threads = capThreads(shards, row);

    auto wl = makeWorkload("fft", 1);
    BuildSpec spec;
    spec.arch = ArchKind::Agg;
    spec.threads = paperThreads();
    spec.pressure = 0.25;
    spec.dRatio = reducedDRatio("fft");
    MachineConfig cfg = buildConfig(*wl, spec);
    cfg.partition = PartitionScheme::Region;
    cfg.shards.count = shards;
    cfg.shards.threads = threads;

    const auto t0 = Clock::now();
    const RunResult r = runWorkload(cfg, *wl);
    const double secs = secondsSince(t0);

    row.events = static_cast<std::uint64_t>(
        r.counters.at("sim.events_executed"));
    row.wallSeconds = secs;
    row.eventsPerSec =
        secs > 0 ? static_cast<double>(row.events) / secs : 0;
    row.peakRssKb = peakRssKb();
    const auto xf = r.counters.find("sim.xshard_frac");
    if (xf != r.counters.end())
        row.xshardFrac = xf->second;
    return row;
}

/**
 * Sharded scheduler churn: the stress distribution split across
 * per-shard queues under a ShardedEngine with a uniform lookahead.
 * No cross-shard traffic and no serial commit work — this is the
 * upper bound on the engine's parallel scaling, which is what the
 * --min-speedup CI gate checks.
 */
class StressShardTask final : public ShardTask
{
  public:
    StressShardTask(int shards, std::uint64_t events_per_shard,
                    EventQueue::KernelKind kind)
    {
        queues_.reserve(static_cast<std::size_t>(shards));
        for (int s = 0; s < shards; ++s)
            queues_.push_back(std::make_unique<EventQueue>(kind));
        states_.resize(static_cast<std::size_t>(shards));
        for (int s = 0; s < shards; ++s) {
            ShardState &st = states_[static_cast<std::size_t>(s)];
            st.q = queues_[static_cast<std::size_t>(s)].get();
            st.rng = Rng(0x5e1f9e4full + static_cast<std::uint64_t>(s));
            st.budget = events_per_shard;
            constexpr std::uint64_t kSeedEvents = 512;
            for (std::uint64_t i = 0;
                 i < kSeedEvents && st.scheduled < st.budget; ++i) {
                ++st.scheduled;
                st.q->scheduleIn(st.delay(), [&st] { st.tick(); });
            }
        }
    }

    void
    runWindow(int shard, Tick, Tick end) override
    {
        queues_[static_cast<std::size_t>(shard)]->runUntil(end - 1);
    }

    Tick nextTime(int shard) override
    {
        return queues_[static_cast<std::size_t>(shard)]->nextEventTick();
    }

    bool commit(Tick) override { return true; }

    std::uint64_t
    executed() const
    {
        std::uint64_t n = 0;
        for (const auto &q : queues_)
            n += q->executed();
        return n;
    }

  private:
    struct ShardState
    {
        EventQueue *q = nullptr;
        Rng rng{0};
        std::uint64_t scheduled = 0;
        std::uint64_t budget = 0;

        Tick
        delay()
        {
            const std::uint64_t r = rng.nextBounded(1000);
            if (r < 700)
                return 1 + rng.nextBounded(16);
            if (r < 950)
                return 20 + rng.nextBounded(400);
            if (r < 998)
                return 1000 + rng.nextBounded(11000);
            return 50000 + rng.nextBounded(200000);
        }

        void
        tick()
        {
            if (scheduled < budget) {
                ++scheduled;
                q->scheduleIn(delay(), [this] { tick(); });
            }
            if (scheduled < budget && rng.chance(0.02)) {
                ++scheduled;
                q->scheduleIn(delay(), [this] { tick(); });
            }
        }
    };

    std::vector<std::unique_ptr<EventQueue>> queues_;
    std::vector<ShardState> states_;
};

SelfPerfRow
runShardedStress(int shards, std::uint64_t total,
                 EventQueue::KernelKind kind)
{
    resetPeakRss();
    SelfPerfRow row;
    row.name = "stress_shards" + std::to_string(shards);
    const int threads = capThreads(shards, row);

    StressShardTask task(shards,
                         total / static_cast<std::uint64_t>(shards),
                         kind);
    ShardedEngine eng(shards, threads, /*lookahead=*/64);

    const auto t0 = Clock::now();
    if (eng.run(task) != ShardedEngine::Stop::Idle)
        panic("sharded stress stopped before going idle");
    const double secs = secondsSince(t0);

    row.events = task.executed();
    row.wallSeconds = secs;
    row.eventsPerSec =
        secs > 0 ? static_cast<double>(row.events) / secs : 0;
    row.peakRssKb = peakRssKb();
    row.xshardFrac = 0.0; // task is fully shard-local by construction
    return row;
}

/** Pull events_per_sec for @p workload out of a committed
 *  BENCH_selfperf.json (same hand-rolled lookup as speccheck: we own
 *  both ends of the format). */
bool
baselineEventsPerSec(const std::string &json,
                     const std::string &workload, double &out)
{
    const std::string tag = "\"workload\": \"" + workload + "\"";
    std::size_t p = json.find(tag);
    if (p == std::string::npos)
        return false;
    const std::string key = "\"events_per_sec\":";
    p = json.find(key, p);
    if (p == std::string::npos)
        return false;
    out = std::strtod(json.c_str() + p + key.size(), nullptr);
    return out > 0;
}

} // namespace

int
main(int argc, char **argv)
{
    bool quick = std::getenv("PIMDSM_QUICK") != nullptr;
    EventQueue::KernelKind kind = EventQueue::defaultKind();
    std::string baselinePath;
    double drift = 0.25;
    double minSpeedup = 0.0;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--quick") {
            quick = true;
        } else if (arg == "--kernel=heap") {
            kind = EventQueue::KernelKind::ReferenceHeap;
        } else if (arg == "--kernel=calendar") {
            kind = EventQueue::KernelKind::Calendar;
        } else if (arg == "--baseline" && i + 1 < argc) {
            baselinePath = argv[++i];
        } else if (arg == "--drift" && i + 1 < argc) {
            drift = std::stod(argv[++i]);
        } else if (arg == "--min-speedup" && i + 1 < argc) {
            minSpeedup = std::stod(argv[++i]);
        } else {
            std::cerr << "usage: bench_selfperf [--quick] "
                         "[--kernel=calendar|heap] [--baseline PATH] "
                         "[--drift F] [--min-speedup F]\n";
            return 2;
        }
    }
    if (quick)
        setenv("PIMDSM_QUICK", "1", 1);
    EventQueue::setDefaultKind(kind);

    banner("Simulator self-performance",
           "simulator implementation metric (no paper analogue)");
    std::cout << "kernel: "
              << (kind == EventQueue::KernelKind::Calendar
                      ? "calendar"
                      : "reference-heap")
              << (quick ? " (quick)" : "") << "\n\n";

    std::vector<SelfPerfRow> rows;
    rows.push_back(runStress(quick ? 300'000 : 3'000'000, kind));
    // Machine runs re-time wall clock around the full experiment
    // runner, so they include machine construction.
    rows.push_back(runFaultCampaign());
    {
        const auto t0 = Clock::now();
        SelfPerfRow fig6 = runFig6Point();
        fig6.wallSeconds = secondsSince(t0);
        fig6.eventsPerSec =
            fig6.wallSeconds > 0
                ? static_cast<double>(fig6.events) / fig6.wallSeconds
                : 0;
        rows.push_back(fig6);
    }
    for (int shards : {1, 2, 4, 8})
        rows.push_back(runShardedFig6(shards));
    const std::uint64_t stressTotal = quick ? 300'000 : 3'000'000;
    for (int shards : {1, 4})
        rows.push_back(runShardedStress(shards, stressTotal, kind));
    std::cout << "host cores for sharded rows: "
              << std::max(1u, std::thread::hardware_concurrency())
              << "\n\n";

    // Speedups are relative to the matching 1-shard row (same prefix).
    const auto speedupBase = [&rows](const std::string &name) -> double {
        const std::size_t us = name.rfind("_shards");
        if (us == std::string::npos || name.substr(us) == "_shards1")
            return 0.0;
        const std::string base = name.substr(0, us) + "_shards1";
        for (const auto &r : rows) {
            if (r.name == base)
                return r.eventsPerSec;
        }
        return 0.0;
    };
    for (auto &r : rows) {
        const double base = speedupBase(r.name);
        if (base > 0 && r.eventsPerSec > 0)
            r.speedupVsShards1 = r.eventsPerSec / base;
    }

    std::cout << "workload                 events      wall(s)"
                 "     events/sec   peakRSS(MB)  thr  x-shard  speedup\n";
    for (const auto &r : rows) {
        std::printf("%-20s %10llu %10.3f %14.0f %10.1f",
                    r.name.c_str(),
                    static_cast<unsigned long long>(r.events),
                    r.wallSeconds, r.eventsPerSec,
                    static_cast<double>(r.peakRssKb) / 1024.0);
        if (r.threadsRequested > 0) {
            std::printf("  %d/%d%s", r.threadsUsed, r.threadsRequested,
                        r.capped ? "!" : " ");
            if (r.xshardFrac >= 0)
                std::printf("  %6.3f", r.xshardFrac);
            else
                std::printf("       -");
            if (r.speedupVsShards1 > 0)
                std::printf("  %5.2fx", r.speedupVsShards1);
        }
        std::printf("\n");
    }

    std::ofstream js("BENCH_selfperf.json");
    js << "{\n  \"bench\": \"selfperf\",\n  \"kernel\": \""
       << (kind == EventQueue::KernelKind::Calendar ? "calendar"
                                                    : "heap")
       << "\",\n  \"quick\": " << (quick ? "true" : "false")
       << ",\n  \"rows\": [\n";
    for (std::size_t i = 0; i < rows.size(); ++i) {
        const auto &r = rows[i];
        js << "    {\"workload\": \"" << r.name
           << "\", \"events\": " << r.events
           << ", \"wall_seconds\": " << r.wallSeconds
           << ", \"events_per_sec\": " << r.eventsPerSec
           << ", \"peak_rss_kb\": " << r.peakRssKb;
        if (r.threadsRequested > 0) {
            js << ", \"threads_requested\": " << r.threadsRequested
               << ", \"threads_used\": " << r.threadsUsed
               << ", \"capped\": " << (r.capped ? "true" : "false");
            if (r.xshardFrac >= 0)
                js << ", \"xshard_frac\": " << r.xshardFrac;
            if (r.speedupVsShards1 > 0)
                js << ", \"speedup_vs_shards1\": "
                   << r.speedupVsShards1;
        }
        js << "}" << (i + 1 < rows.size() ? "," : "") << "\n";
    }
    js << "  ]\n}\n";
    js.close(); // flush before the gate below possibly re-reads it
    std::cout << "\nwrote BENCH_selfperf.json (" << rows.size()
              << " workloads)\n";

    if (!baselinePath.empty()) {
        std::ifstream f(baselinePath, std::ios::binary);
        if (!f) {
            std::cerr << "bench_selfperf: cannot read " << baselinePath
                      << "\n";
            return 2;
        }
        std::ostringstream os;
        os << f.rdbuf();
        const std::string baseline = os.str();
        const bool waived =
            std::getenv("PIMDSM_PERF_WAIVE") != nullptr;
        bool regressed = false;
        for (const auto &r : rows) {
            double want = 0;
            if (!baselineEventsPerSec(baseline, r.name, want)) {
                std::cout << "baseline: no row for '" << r.name
                          << "', skipping\n";
                continue;
            }
            const double floor = want * (1.0 - drift);
            if (r.eventsPerSec < floor) {
                std::cerr << "bench_selfperf: '" << r.name
                          << "' regressed: " << r.eventsPerSec
                          << " events/sec vs baseline " << want
                          << " (allowed -" << drift * 100 << "%)\n";
                regressed = true;
            } else {
                std::cout << "baseline: '" << r.name << "' ok ("
                          << r.eventsPerSec << " vs " << want << ")\n";
            }
        }
        if (regressed) {
            if (waived) {
                std::cerr << "bench_selfperf: regression WAIVED via "
                             "PIMDSM_PERF_WAIVE\n";
            } else {
                std::cerr << "bench_selfperf: FAIL (set "
                             "PIMDSM_PERF_WAIVE=1 to override on "
                             "known-noisy hosts)\n";
                return 1;
            }
        }
    }

    if (minSpeedup > 0) {
        // Parallel-scaling gate: the 4-shard stress churn must beat
        // the 1-shard run by the given factor. A thread-capped row is
        // exempt — a host without the cores cannot show the speedup,
        // and failing there would only teach people to waive the gate.
        const SelfPerfRow *gated = nullptr;
        for (const auto &r : rows) {
            if (r.name == "stress_shards4")
                gated = &r;
        }
        if (!gated) {
            std::cerr << "bench_selfperf: --min-speedup given but no "
                         "stress_shards4 row was produced\n";
            return 2;
        }
        if (gated->capped) {
            std::cout << "min-speedup gate skipped: 'stress_shards4' "
                         "was thread-capped ("
                      << gated->threadsUsed << "/"
                      << gated->threadsRequested << " threads)\n";
        } else if (gated->speedupVsShards1 < minSpeedup) {
            std::cerr << "bench_selfperf: 'stress_shards4' speedup "
                      << gated->speedupVsShards1 << "x is below the "
                      << minSpeedup << "x gate\n";
            if (std::getenv("PIMDSM_PERF_WAIVE")) {
                std::cerr << "bench_selfperf: speedup gate WAIVED via "
                             "PIMDSM_PERF_WAIVE\n";
            } else {
                std::cerr << "bench_selfperf: FAIL (set "
                             "PIMDSM_PERF_WAIVE=1 to override on "
                             "known-noisy hosts)\n";
                return 1;
            }
        } else {
            std::cout << "min-speedup gate ok: 'stress_shards4' "
                      << gated->speedupVsShards1 << "x >= "
                      << minSpeedup << "x\n";
        }
    }
    return 0;
}
