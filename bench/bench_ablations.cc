/**
 * @file
 * Ablations of the AGG design choices that DESIGN.md calls out:
 *
 *  1. shared-master state (Section 2.2.2): with mastership handout
 *     disabled, home copies of shared lines are never reclaimable and
 *     the D-nodes must page instead.
 *  2. directory representation: the paper's 3-pointer limited vector
 *     vs a full bit map (broadcast invalidations on overflow).
 *  3. local-memory replacement: pseudo-random (default) vs strict LRU
 *     (pathological on cyclic sweeps).
 *  4. software handler cost: sweeping the Table 2 multiplier shows
 *     how sensitive AGG is to protocol-processing speed (the "custom
 *     protocol processor" question of Section 2.2.1).
 */

#include <functional>

#include "bench_util.hh"

using namespace pimdsm;
using namespace pimdsm::bench;

namespace
{

RunResult
runCfg(const Workload &wl, int threads,
       const std::function<void(MachineConfig &)> &tweak)
{
    BuildSpec spec;
    spec.arch = ArchKind::Agg;
    spec.threads = threads;
    spec.pressure = 0.75;
    MachineConfig cfg = buildConfig(wl, spec);
    tweak(cfg);
    return runWorkload(cfg, wl);
}

} // namespace

int
main()
{
    const int threads = std::getenv("PIMDSM_QUICK") ? 8 : 16;

    banner("Ablations of the AGG design choices",
           "each row isolates one mechanism the paper argues for");

    // ------------------------------------------------------ 1. master
    {
        auto wl = makeWorkload("barnes");
        const RunResult on =
            runCfg(*wl, threads, [](MachineConfig &) {});
        const RunResult off = runCfg(*wl, threads, [](MachineConfig &c) {
            c.aggGrantsMastership = false;
        });
        TablePrinter t({"shared-master state", "Mcycles", "page-ins",
                        "SharedList reuses", "3-hop reads"});
        auto row = [&](const char *label, const RunResult &r) {
            auto get = [&](const char *k) {
                return r.counters.count(k) ? r.counters.at(k) : 0.0;
            };
            t.addRow({label, TablePrinter::num(r.totalTicks / 1e6),
                      TablePrinter::num(get("dnode.page_in"), 0),
                      TablePrinter::num(
                          get("dnode.sharedlist_reuse"), 0),
                      TablePrinter::num(
                          r.reads.count[static_cast<int>(
                              ReadService::Hop3)] / 1e3, 1) + "k"});
        };
        row("enabled (paper)", on);
        row("disabled", off);
        std::cout << "1. shared-master / SharedList (barnes, 75% "
                     "pressure):\n";
        t.print(std::cout);
        std::cout << "\n";
    }

    // --------------------------------------------------- 2. directory
    {
        auto wl = makeWorkload("barnes");
        const RunResult full =
            runCfg(*wl, threads, [](MachineConfig &) {});
        const RunResult limited =
            runCfg(*wl, threads, [](MachineConfig &c) {
                c.directoryPointers = 3;
            });
        TablePrinter t({"directory scheme", "Mcycles",
                        "invals sent", "broadcasts"});
        auto invals = [](const RunResult &r) {
            return r.counters.count("home.broadcast_invals")
                       ? r.counters.at("home.broadcast_invals")
                       : 0.0;
        };
        t.addRow({"full bit map", TablePrinter::num(full.totalTicks / 1e6),
                  TablePrinter::num(full.messages / 1e3, 0) + "k msgs",
                  TablePrinter::num(invals(full), 0)});
        t.addRow({"3-pointer limited (paper)",
                  TablePrinter::num(limited.totalTicks / 1e6),
                  TablePrinter::num(limited.messages / 1e3, 0) +
                      "k msgs",
                  TablePrinter::num(invals(limited), 0)});
        std::cout << "2. directory representation (barnes, widely "
                     "shared tree):\n";
        t.print(std::cout);
        std::cout << "\n";
    }

    // ------------------------------------------------- 3. replacement
    {
        auto wl = makeWorkload("ocean");
        const RunResult rnd =
            runCfg(*wl, threads, [](MachineConfig &) {});
        const RunResult lru = runCfg(*wl, threads, [](MachineConfig &c) {
            c.mem.lruLocalMemory = true;
        });
        TablePrinter t({"local-memory replacement", "Mcycles",
                        "local-mem reads", "remote reads"});
        auto classes = [](const RunResult &r) {
            return std::make_pair(
                r.reads.count[static_cast<int>(ReadService::LocalMem)],
                r.reads.count[static_cast<int>(ReadService::Hop2)] +
                    r.reads.count[static_cast<int>(
                        ReadService::Hop3)]);
        };
        const auto [rl, rr] = classes(rnd);
        const auto [ll, lr] = classes(lru);
        t.addRow({"pseudo-random (default)",
                  TablePrinter::num(rnd.totalTicks / 1e6),
                  TablePrinter::num(rl / 1e3, 0) + "k",
                  TablePrinter::num(rr / 1e3, 0) + "k"});
        t.addRow({"strict LRU", TablePrinter::num(lru.totalTicks / 1e6),
                  TablePrinter::num(ll / 1e3, 0) + "k",
                  TablePrinter::num(lr / 1e3, 0) + "k"});
        std::cout << "3. tagged-memory replacement (ocean's cyclic "
                     "sweeps, 75% pressure):\n";
        t.print(std::cout);
        std::cout << "\n";
    }

    // ----------------------------------------------- 4. handler costs
    {
        auto wl = makeWorkload("radix");
        TablePrinter t({"software handler cost", "Mcycles",
                        "vs Table 2"});
        double base = 0;
        for (double f : {0.7, 1.0, 1.5, 2.0}) {
            const RunResult r =
                runCfg(*wl, threads, [f](MachineConfig &c) {
                    c.handlers.softwareFactor = f;
                });
            if (f == 1.0)
                base = static_cast<double>(r.totalTicks);
            t.addRow({TablePrinter::num(f, 1) + "x",
                      TablePrinter::num(r.totalTicks / 1e6),
                      base > 0 ? TablePrinter::num(r.totalTicks / base)
                               : "-"});
        }
        std::cout << "4. protocol-processing speed (radix, "
                     "D-node-intensive; 0.7x ~= the paper's custom "
                     "hardware assumption):\n";
        t.print(std::cout);
    }
    return 0;
}
