/**
 * @file
 * Shared helpers for the per-table/per-figure bench binaries.
 *
 * Every bench regenerates one of the paper's tables or figures and
 * prints the measured rows next to the paper's reported shape, so
 * EXPERIMENTS.md can be cross-checked by running every binary in
 * the build's bench directory.
 */

#ifndef PIMDSM_BENCH_BENCH_UTIL_HH
#define PIMDSM_BENCH_BENCH_UTIL_HH

#include <cstdlib>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "report/experiment.hh"
#include "report/report.hh"
#include "workload/apps.hh"
#include "workload/workload.hh"

namespace pimdsm::bench
{

/** Threads used by the paper's main experiments. */
inline int
paperThreads()
{
    // PIMDSM_QUICK trims run time for smoke testing.
    return std::getenv("PIMDSM_QUICK") ? 8 : 32;
}

/** Apps that "put relatively more demands on the D-nodes" run the
 *  reduced ratio 1/2; the rest use 1/4 (Section 4.1). */
inline int
reducedDRatio(const std::string &app)
{
    if (app == "fft" || app == "radix" || app == "ocean")
        return 2;
    return 4;
}

inline std::vector<std::string>
benchApps()
{
    if (std::getenv("PIMDSM_QUICK"))
        return {"fft", "barnes"};
    return paperWorkloadNames();
}

struct NamedRun
{
    std::string label;
    RunResult result;
};

inline RunResult
run(const Workload &wl, ArchKind arch, int threads, double pressure,
    int d_ratio = 1)
{
    BuildSpec spec;
    spec.arch = arch;
    spec.threads = threads;
    spec.pressure = pressure;
    spec.dRatio = d_ratio;
    return runWorkload(wl, spec);
}

/** Memory/Processor split of @p r scaled to its normalized total. */
inline std::vector<double>
timeSegments(const RunResult &r, double normalized_total)
{
    const double mem = r.memoryFraction() * normalized_total;
    return {mem, normalized_total - mem};
}

inline void
banner(const std::string &title, const std::string &paper_shape)
{
    std::cout << "==================================================="
                 "=====================\n";
    std::cout << title << "\n";
    std::cout << "paper shape: " << paper_shape << "\n";
    std::cout << "==================================================="
                 "=====================\n\n";
}

} // namespace pimdsm::bench

#endif // PIMDSM_BENCH_BENCH_UTIL_HH
