/**
 * @file
 * Figure 10(b): computation in memory on Dbase. Plain has the P-nodes
 * scan the tables; Opt offloads the scans to the home D-nodes, which
 * return only matching record pointers (Section 2.4).
 */

#include "bench_util.hh"

using namespace pimdsm;
using namespace pimdsm::bench;

int
main()
{
    banner("Figure 10(b): Dbase computation in memory (Plain vs Opt)",
           "the select offload cuts Dbase execution time by ~70% "
           "across P&D configurations");

    const bool quick = std::getenv("PIMDSM_QUICK") != nullptr;
    struct Combo
    {
        int p;
        int d;
    };
    const std::vector<Combo> combos =
        quick ? std::vector<Combo>{{4, 4}, {8, 8}}
              : std::vector<Combo>{{8, 8}, {16, 16}, {28, 4}};

    DbaseWorkload plain(1, false);
    DbaseWorkload opt(1, true);

    TablePrinter t({"config", "Plain Mcycles", "Opt Mcycles",
                    "Opt / Plain", "reduction"});
    std::vector<Bar> bars;

    for (const auto &combo : combos) {
        BuildSpec spec;
        spec.arch = ArchKind::Agg;
        spec.threads = combo.p;
        spec.dNodes = combo.d;
        spec.pressure = 0.75;

        const RunResult rp = runWorkload(plain, spec);
        const RunResult ro = runWorkload(opt, spec);
        const double ratio =
            ro.totalTicks / static_cast<double>(rp.totalTicks);

        const std::string label = std::to_string(combo.p) + "&" +
                                  std::to_string(combo.d);
        t.addRow({label, TablePrinter::num(rp.totalTicks / 1e6),
                  TablePrinter::num(ro.totalTicks / 1e6),
                  TablePrinter::num(ratio),
                  TablePrinter::pct(1.0 - ratio)});
        bars.push_back({label + " Plain", timeSegments(rp, 1.0)});
        bars.push_back({label + " Opt", timeSegments(ro, ratio)});
    }

    printBars(std::cout,
              "Fig 10(b) — Dbase Plain vs Opt (per config, Plain = "
              "1.0)",
              {"Memory", "Processor"}, bars);
    t.print(std::cout);
    return 0;
}
