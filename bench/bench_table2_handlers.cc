/**
 * @file
 * Table 2: protocol handler costs. The paper measured its handlers on
 * an R10K; here we (a) print the configured latency/occupancy
 * constants the simulator charges, and (b) run a google-benchmark
 * microbenchmark of this repo's actual software implementations of
 * the D-node handler data paths (Directory lookup + Data/Pointer
 * array manipulation), grounding the constants.
 */

#include <benchmark/benchmark.h>

#include <iostream>

#include "proto/agg_dnode.hh"
#include "proto/directory.hh"
#include "report/report.hh"
#include "sim/config.hh"
#include "sim/random.hh"

using namespace pimdsm;

namespace
{

void
printConfiguredTable()
{
    const HandlerCosts c = MachineConfig{}.handlers;
    TablePrinter t({"handler", "paper latency", "model latency",
                    "paper occupancy", "model occupancy"});
    t.addRow({"Read", "40-50", std::to_string(c.readLatency), "80",
              std::to_string(c.readOccupancy)});
    t.addRow({"Read Exclusive", "40-50",
              std::to_string(c.readExLatency), "80 + 10/inval",
              std::to_string(c.readExOccupancy) + " + " +
                  std::to_string(c.perInvalOccupancy) + "/inval"});
    t.addRow({"Acknowledgment", "40", std::to_string(c.ackLatency),
              "40", std::to_string(c.ackOccupancy)});
    t.addRow({"Write Back", "40", std::to_string(c.writeBackLatency),
              "140", std::to_string(c.writeBackOccupancy)});
    std::cout << "Table 2: protocol handler costs in CPU cycles "
                 "(NUMA/COMA hardware runs at "
              << c.hardwareFactor
              << "x of these)\n";
    t.print(std::cout);
    std::cout << "\nMicrobenchmarks of this repo's handler data "
                 "structures follow (ns/op on the build host):\n\n";
}

/** Directory lookup + state update, the core of the Read handler. */
void
BM_DirectoryReadPath(benchmark::State &state)
{
    DirectoryTable dir;
    Rng rng(1);
    for (int i = 0; i < 4096; ++i)
        dir.entry(static_cast<Addr>(i) * 128);
    for (auto _ : state) {
        const Addr line = rng.nextBounded(4096) * 128;
        DirEntry *e = dir.find(line);
        benchmark::DoNotOptimize(e);
        e->addSharer(static_cast<NodeId>(rng.nextBounded(32)));
        e->state = DirEntry::State::Shared;
    }
}
BENCHMARK(BM_DirectoryReadPath);

/** FreeList allocation + SharedList link: first-read mastership. */
void
BM_DataPointerAllocateLink(benchmark::State &state)
{
    DNodeStore store(8192);
    std::vector<std::uint32_t> slots;
    slots.reserve(8192);
    Addr next = 1 << 20;
    for (auto _ : state) {
        bool reused;
        Addr dropped;
        const auto slot = store.allocate(next, reused, dropped);
        next += 128;
        store.linkShared(slot);
        slots.push_back(slot);
        if (slots.size() == 4096) {
            for (auto s : slots) {
                store.unlinkShared(s);
                store.free(s);
            }
            slots.clear();
        }
    }
}
BENCHMARK(BM_DataPointerAllocateLink);

/** Slot release, the core of the Read-Exclusive handler's space
 *  reclamation (dirty lines keep no home placeholder). */
void
BM_DataPointerRelease(benchmark::State &state)
{
    DNodeStore store(8192);
    bool reused;
    Addr dropped;
    std::vector<std::uint32_t> slots;
    for (int i = 0; i < 8192; ++i)
        slots.push_back(store.allocate(i * 128, reused, dropped));
    std::size_t idx = 0;
    for (auto _ : state) {
        store.free(slots[idx]);
        slots[idx] = store.allocate((idx + 100000) * 128, reused,
                                    dropped);
        idx = (idx + 1) % slots.size();
    }
}
BENCHMARK(BM_DataPointerRelease);

/** SharedList FIFO reuse under memory pressure. */
void
BM_SharedListReuse(benchmark::State &state)
{
    DNodeStore store(4096);
    bool reused;
    Addr dropped;
    for (int i = 0; i < 4096; ++i) {
        const auto s = store.allocate(i * 128, reused, dropped);
        store.linkShared(s);
    }
    Addr next = 1 << 24;
    for (auto _ : state) {
        const auto s = store.allocate(next, reused, dropped);
        next += 128;
        benchmark::DoNotOptimize(dropped);
        store.linkShared(s); // hand mastership out again
    }
}
BENCHMARK(BM_SharedListReuse);

} // namespace

int
main(int argc, char **argv)
{
    printConfiguredTable();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
