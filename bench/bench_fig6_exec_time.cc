/**
 * @file
 * Figure 6: normalized execution time of NUMA, COMA, and AGG (1/1 plus
 * the reduced-D ratio) at 25% and 75% memory pressure, decomposed into
 * Memory and Processor time, per application.
 */

#include "bench_util.hh"

using namespace pimdsm;
using namespace pimdsm::bench;

int
main()
{
    banner("Figure 6: normalized execution time (Memory + Processor)",
           "COMA ~= 1/1AGG, both ~30-40% below NUMA; reduced-D AGG "
           "only ~12% above 1/1AGG");

    const int threads = paperThreads();

    TablePrinter summary({"app", "NUMA", "COMA25", "COMA75",
                          "1/1AGG25", "1/1AGG75", "redAGG25",
                          "redAGG75"});

    for (const auto &app : benchApps()) {
        auto wl = makeWorkload(app);
        const int red = reducedDRatio(app);

        const RunResult numa =
            run(*wl, ArchKind::Numa, threads, 0.75);
        const double base = static_cast<double>(numa.totalTicks);

        std::vector<NamedRun> runs;
        runs.push_back({"NUMA", numa});
        runs.push_back(
            {"COMA25", run(*wl, ArchKind::Coma, threads, 0.25)});
        runs.push_back(
            {"COMA75", run(*wl, ArchKind::Coma, threads, 0.75)});
        runs.push_back(
            {"1/1AGG25", run(*wl, ArchKind::Agg, threads, 0.25, 1)});
        runs.push_back(
            {"1/1AGG75", run(*wl, ArchKind::Agg, threads, 0.75, 1)});
        runs.push_back({"1/" + std::to_string(red) + "AGG25",
                        run(*wl, ArchKind::Agg, threads, 0.25, red)});
        runs.push_back({"1/" + std::to_string(red) + "AGG75",
                        run(*wl, ArchKind::Agg, threads, 0.75, red)});

        std::vector<Bar> bars;
        std::vector<std::string> row = {app};
        for (const auto &nr : runs) {
            const double norm = nr.result.totalTicks / base;
            bars.push_back(
                {nr.label, timeSegments(nr.result, norm)});
            row.push_back(TablePrinter::num(norm));
        }
        printBars(std::cout, "Fig 6 — " + app + " (vs NUMA = 1.0)",
                  {"Memory", "Processor"}, bars);
        summary.addRow(row);
    }

    std::cout << "Summary (execution time normalized to NUMA):\n";
    summary.print(std::cout);
    return 0;
}
